//! Conservative (lookahead/null-message style) parallel DES.
//!
//! The world is partitioned into a *fixed* set of shards (logical
//! processes). Each shard owns a slice of the model state, runs its
//! own [`EventQueue`] timing wheel, and exchanges timestamped *cross*
//! events with other shards. Two drivers execute the same shard set:
//!
//! * [`ShardedSim::run_sequential`] multiplexes every shard on the
//!   calling thread, always processing the globally earliest event;
//! * [`ShardedSim::run_threaded`] runs shards on worker threads under
//!   the conservative watermark protocol: each shard *i* publishes a
//!   promise `W_i` ("I will never again send a cross event with
//!   timestamp `< W_i`"), derived from its next event and the other
//!   shards' promises plus its *lookahead* (the minimum latency any of
//!   its sends adds — a fabric hop, an interrupt entry). A shard may
//!   safely process any event strictly earlier than
//!   `min_{j≠i} W_j`.
//!
//! # The deterministic merge contract
//!
//! Both drivers process each shard's events in exactly the same order:
//!
//! 1. earliest timestamp first;
//! 2. at equal timestamps, cross events before local events;
//! 3. cross events tie-break by `(time, source shard id, insertion
//!    seq)`, where the seq is a per-(source, destination) send
//!    counter;
//! 4. local events at equal times keep timing-wheel FIFO order.
//!
//! Because every cross send must satisfy `ts ≥ now + lookahead` with
//! `lookahead > 0`, same-timestamp events on *different* shards are
//! causally independent, so the processing order of each shard depends
//! only on the ordering keys — never on thread interleaving. A
//! threaded run therefore produces bit-identical shard states to the
//! sequential multiplexer, which is what lets `afa-core` promise
//! byte-identical experiment artifacts for any `AFA_THREADS`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// One partition of a sharded world.
///
/// Implementations own their slice of model state and react to their
/// own (local) events and to cross events arriving from other shards.
pub trait ShardWorld: Send {
    /// Events a shard schedules for itself.
    type Local: Send;
    /// Events exchanged between shards.
    type Cross: Send;

    /// Handles one local event popped from this shard's wheel.
    fn handle_local(
        &mut self,
        event: Self::Local,
        ctx: &mut ShardCtx<'_, Self::Local, Self::Cross>,
    );

    /// Handles one cross event sent by shard `src`.
    fn handle_cross(
        &mut self,
        src: usize,
        event: Self::Cross,
        ctx: &mut ShardCtx<'_, Self::Local, Self::Cross>,
    );
}

/// Scheduling context handed to a shard while it processes one event.
pub struct ShardCtx<'a, L, C> {
    shard: usize,
    now: SimTime,
    lookahead: SimDuration,
    queue: &'a mut EventQueue<L>,
    outbox: &'a mut Vec<(usize, SimTime, C)>,
    clamped: &'a mut u64,
}

impl<L, C> ShardCtx<'_, L, C> {
    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This shard's stable id.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Schedules a local event at an absolute time. Past instants
    /// clamp to the clock and count, exactly like
    /// [`Scheduler::at`](crate::Scheduler::at).
    pub fn at(&mut self, time: SimTime, event: L) {
        if time < self.now {
            crate::driver::note_past_schedule(self.clamped, self.now, time);
        }
        self.queue.push(time.max(self.now), event);
    }

    /// Schedules a local event `delay` after the current instant.
    pub fn after(&mut self, delay: SimDuration, event: L) {
        self.queue.push(self.now + delay, event);
    }

    /// Sends a cross event to shard `dst` (self-sends are allowed and
    /// ordered like any other cross event).
    ///
    /// # Panics
    ///
    /// Panics if `time < now + lookahead`: the conservative protocol
    /// is sound only when every send respects the shard's declared
    /// lookahead bound.
    pub fn send(&mut self, dst: usize, time: SimTime, event: C) {
        assert!(
            time >= self.now + self.lookahead,
            "cross-shard send at {time} violates lookahead \
             (now {}, lookahead {} ns)",
            self.now,
            self.lookahead.as_nanos(),
        );
        self.outbox.push((dst, time, event));
    }
}

/// Merge key of a received cross event — the contract's clause 3.
type CrossKey = (u64, u32, u64); // (time ns, src shard, per-channel seq)

struct ShardState<W: ShardWorld> {
    world: W,
    queue: EventQueue<W::Local>,
    /// Received-but-unprocessed cross events in merge-key order.
    pending: BTreeMap<CrossKey, W::Cross>,
    /// This shard's stable id.
    id: usize,
    /// Per-destination send sequence counters.
    send_seq: Vec<u64>,
    lookahead: SimDuration,
    now: SimTime,
    processed: u64,
    clamped: u64,
}

impl<W: ShardWorld> ShardState<W> {
    /// Timestamp of the earliest unprocessed event (local or cross).
    fn next_time_ns(&mut self) -> Option<u64> {
        let local = self.queue.next_time().map(SimTime::as_nanos);
        let cross = self.pending.keys().next().map(|k| k.0);
        match (local, cross) {
            (None, c) => c,
            (l, None) => l,
            (Some(l), Some(c)) => Some(l.min(c)),
        }
    }

    /// Processes the earliest event (cross wins timestamp ties).
    /// Returns false when nothing is queued.
    fn step(&mut self, outbox: &mut Vec<(usize, SimTime, W::Cross)>) -> bool {
        let local = self.queue.next_time().map(SimTime::as_nanos);
        let cross = self.pending.keys().next().copied();
        let take_cross = match (local, cross) {
            (None, None) => return false,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(l), Some(c)) => c.0 <= l,
        };
        if take_cross {
            let (key, event) = self.pending.pop_first().expect("cross head");
            self.now = SimTime::from_nanos(key.0);
            self.processed += 1;
            let mut ctx = ShardCtx {
                shard: self.id,
                now: self.now,
                lookahead: self.lookahead,
                queue: &mut self.queue,
                outbox,
                clamped: &mut self.clamped,
            };
            self.world.handle_cross(key.1 as usize, event, &mut ctx);
        } else {
            let (time, event) = self.queue.pop().expect("local head");
            self.now = time;
            self.processed += 1;
            let mut ctx = ShardCtx {
                shard: self.id,
                now: self.now,
                lookahead: self.lookahead,
                queue: &mut self.queue,
                outbox,
                clamped: &mut self.clamped,
            };
            self.world.handle_local(event, &mut ctx);
        }
        true
    }
}

/// In-flight cross message in a parallel run.
struct InMsg<C> {
    key: CrossKey,
    payload: C,
}

/// A bounded SPSC mailbox: exactly one producer (shard `src`) and one
/// consumer (shard `dst`) touch each slot.
struct Mailbox<C> {
    slot: Mutex<Vec<InMsg<C>>>,
}

/// Soft bound on undrained messages per channel; producers spin until
/// the consumer drains (the consumer drains unconditionally on every
/// pump iteration, so this cannot deadlock).
const MAILBOX_CAP: usize = 8192;

/// A sharded simulation: a fixed set of [`ShardWorld`] partitions plus
/// the two drivers that execute them.
pub struct ShardedSim<W: ShardWorld> {
    shards: Vec<ShardState<W>>,
    outbox: Vec<(usize, SimTime, W::Cross)>,
    flushed_events: u64,
    flushed_clamped: u64,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Builds a simulation from `(world, lookahead)` pairs, one per
    /// shard. Shard ids are the vector indices and must stay stable
    /// across runs — they are part of the merge contract.
    pub fn new(shards: Vec<(W, SimDuration)>) -> Self {
        let n = shards.len();
        assert!(n > 0, "need at least one shard");
        let shards = shards
            .into_iter()
            .enumerate()
            .map(|(id, (world, lookahead))| {
                assert!(
                    !lookahead.is_zero(),
                    "conservative sync requires positive lookahead"
                );
                ShardState {
                    world,
                    queue: EventQueue::new(),
                    pending: BTreeMap::new(),
                    id,
                    send_seq: vec![0; n],
                    lookahead,
                    now: SimTime::ZERO,
                    processed: 0,
                    clamped: 0,
                }
            })
            .collect();
        ShardedSim {
            shards,
            outbox: Vec::new(),
            flushed_events: 0,
            flushed_clamped: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Seeds an initial local event on `shard`.
    pub fn schedule(&mut self, shard: usize, time: SimTime, event: W::Local) {
        self.shards[shard].queue.push(time, event);
    }

    /// The latest instant any shard has reached (equals the timestamp
    /// of the last event processed anywhere once a run completes).
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.now)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Total past-time schedules clamped across all shards.
    pub fn clamped_past_schedules(&self) -> u64 {
        self.shards.iter().map(|s| s.clamped).sum()
    }

    /// Consumes the simulation, returning the shard worlds in id
    /// order.
    pub fn into_worlds(self) -> Vec<W> {
        self.shards.into_iter().map(|s| s.world).collect()
    }

    /// Flushes processed/clamped deltas to the process-wide
    /// [`metrics`](crate::metrics) counters (batched, like
    /// [`Simulation`](crate::Simulation)).
    fn flush_metrics(&mut self) {
        let events = self.events_processed();
        let clamped = self.clamped_past_schedules();
        crate::metrics::add_events(events - self.flushed_events);
        crate::metrics::add_clamped_past(clamped - self.flushed_clamped);
        self.flushed_events = events;
        self.flushed_clamped = clamped;
    }

    /// Delivers this shard's outbox, assigning per-channel sequence
    /// numbers (identical in both drivers) and inserting straight into
    /// the destinations' pending sets.
    fn deliver_outbox_sequential(&mut self, src: usize) {
        // Drain into a scratch Vec to end the borrow of `src`.
        let msgs = std::mem::take(&mut self.outbox);
        for (dst, ts, payload) in msgs {
            let seq = self.shards[src].send_seq[dst];
            self.shards[src].send_seq[dst] += 1;
            let key = (ts.as_nanos(), src as u32, seq);
            self.shards[dst].pending.insert(key, payload);
        }
    }

    /// Runs every shard to completion on the calling thread, always
    /// advancing the shard holding the globally earliest event (ties
    /// to the lowest shard id — which cannot matter, because
    /// equal-time events on different shards are causally
    /// independent under the lookahead discipline).
    pub fn run_sequential(&mut self) {
        loop {
            let mut best: Option<(u64, usize)> = None;
            for i in 0..self.shards.len() {
                if let Some(t) = self.shards[i].next_time_ns() {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            let mut outbox = std::mem::take(&mut self.outbox);
            self.shards[i].step(&mut outbox);
            self.outbox = outbox;
            self.deliver_outbox_sequential(i);
        }
        self.flush_metrics();
    }

    /// Runs the shards on `threads` worker threads under the
    /// conservative watermark protocol. `threads` is clamped to
    /// `1..=shard_count`; one thread degenerates to (a slower form
    /// of) the sequential driver and produces identical results, as
    /// does any other thread count.
    pub fn run_threaded(&mut self, threads: usize) {
        let n = self.shards.len();
        let threads = threads.clamp(1, n);
        if threads == 1 {
            self.run_sequential();
            return;
        }

        let watermarks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let idle: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let sent = AtomicU64::new(0);
        let received = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let mailboxes: Vec<Vec<Mailbox<W::Cross>>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| Mailbox {
                        slot: Mutex::new(Vec::new()),
                    })
                    .collect()
            })
            .collect();

        // Partition shards round-robin across threads, preserving ids.
        let mut groups: Vec<Vec<(usize, ShardState<W>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, shard) in self.shards.drain(..).enumerate() {
            groups[i % threads].push((i, shard));
        }

        let watermarks = &watermarks;
        let idle = &idle;
        let sent = &sent;
        let received = &received;
        let done = &done;
        let mailboxes = &mailboxes;

        let finished: Vec<Vec<(usize, ShardState<W>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .map(|(tid, group)| {
                    scope.spawn(move || {
                        pump_group(
                            tid, group, n, watermarks, idle, sent, received, done, mailboxes,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });

        let mut shards: Vec<Option<ShardState<W>>> = (0..n).map(|_| None).collect();
        for group in finished {
            for (i, shard) in group {
                shards[i] = Some(shard);
            }
        }
        self.shards = shards
            .into_iter()
            .map(|s| s.expect("every shard returned"))
            .collect();
        self.flush_metrics();
    }
}

/// The per-thread pump loop of the parallel driver.
#[allow(clippy::too_many_arguments)]
fn pump_group<W: ShardWorld>(
    tid: usize,
    mut group: Vec<(usize, ShardState<W>)>,
    n: usize,
    watermarks: &[AtomicU64],
    idle: &[AtomicBool],
    sent: &AtomicU64,
    received: &AtomicU64,
    done: &AtomicBool,
    mailboxes: &[Vec<Mailbox<W::Cross>>],
) -> Vec<(usize, ShardState<W>)> {
    let mut outbox: Vec<(usize, SimTime, W::Cross)> = Vec::new();
    let mut drained: Vec<InMsg<W::Cross>> = Vec::new();
    while !done.load(Ordering::Acquire) {
        let mut progress = false;
        for (id, shard) in &mut group {
            let id = *id;
            // Drain inboxes: senders enqueue *before* publishing
            // watermarks, so everything a watermark promises visible
            // is visible after this drain.
            let mut got = 0u64;
            for inbox in mailboxes[id].iter().take(n) {
                let mut slot = inbox.slot.lock().expect("mailbox");
                if !slot.is_empty() {
                    drained.append(&mut slot);
                }
                drop(slot);
            }
            for msg in drained.drain(..) {
                shard.pending.insert(msg.key, msg.payload);
                got += 1;
            }
            if got > 0 {
                received.fetch_add(got, Ordering::AcqRel);
            }

            // Process every event strictly below the safe horizon.
            loop {
                let safe = min_other_watermark(watermarks, id);
                let Some(next) = shard.next_time_ns() else {
                    break;
                };
                if next >= safe {
                    break;
                }
                shard.step(&mut outbox);
                progress = true;
                // Flush sends promptly so downstream shards advance.
                for (dst, ts, payload) in outbox.drain(..) {
                    let seq = shard.send_seq[dst];
                    shard.send_seq[dst] += 1;
                    let key = (ts.as_nanos(), id as u32, seq);
                    loop {
                        let mut slot = mailboxes[dst][id].slot.lock().expect("mailbox");
                        if slot.len() < MAILBOX_CAP {
                            slot.push(InMsg { key, payload });
                            break;
                        }
                        drop(slot);
                        std::hint::spin_loop();
                    }
                    sent.fetch_add(1, Ordering::AcqRel);
                }
            }

            // Publish the new promise: nothing this shard ever sends
            // again can be earlier than its next event (or the
            // earliest event another shard could still send it),
            // plus its lookahead.
            let safe = min_other_watermark(watermarks, id);
            let head = shard.next_time_ns().unwrap_or(u64::MAX);
            let promise = head.min(safe).saturating_add(shard.lookahead.as_nanos());
            let current = watermarks[id].load(Ordering::Relaxed);
            if promise > current {
                watermarks[id].store(promise, Ordering::Release);
            }
            idle[id].store(shard.next_time_ns().is_none(), Ordering::Release);
        }

        if !progress {
            // Termination: all shards idle with no message in flight,
            // stable across a double read (thread 0 decides).
            if tid == 0 && all_quiet(idle, sent, received) && all_quiet(idle, sent, received) {
                done.store(true, Ordering::Release);
                break;
            }
            std::thread::yield_now();
        }
    }
    group
}

fn min_other_watermark(watermarks: &[AtomicU64], id: usize) -> u64 {
    let mut safe = u64::MAX;
    for (j, w) in watermarks.iter().enumerate() {
        if j != id {
            safe = safe.min(w.load(Ordering::Acquire));
        }
    }
    safe
}

fn all_quiet(idle: &[AtomicBool], sent: &AtomicU64, received: &AtomicU64) -> bool {
    let s = sent.load(Ordering::Acquire);
    let r = received.load(Ordering::Acquire);
    s == r && idle.iter().all(|f| f.load(Ordering::Acquire))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test world: shards pass a token around the ring, each hop
    /// recording what it saw. Local "tick" events also fire to
    /// exercise cross-vs-local tie ordering.
    struct Ring {
        id: usize,
        shards: usize,
        log: Vec<(u64, usize, u64)>, // (time, src, value)
        hops_left: u64,
    }

    #[derive(Debug)]
    enum Local {
        Tick(u64),
    }

    impl ShardWorld for Ring {
        type Local = Local;
        type Cross = u64;

        fn handle_local(&mut self, event: Local, ctx: &mut ShardCtx<'_, Local, u64>) {
            let Local::Tick(v) = event;
            self.log.push((ctx.now().as_nanos(), usize::MAX, v));
            if self.hops_left > 0 {
                self.hops_left -= 1;
                let dst = (self.id + 1) % self.shards;
                ctx.send(dst, ctx.now() + SimDuration::nanos(700), v + 1);
            }
        }

        fn handle_cross(&mut self, src: usize, event: u64, ctx: &mut ShardCtx<'_, Local, u64>) {
            self.log.push((ctx.now().as_nanos(), src, event));
            if event < 200 {
                let dst = (self.id + 1) % self.shards;
                ctx.send(dst, ctx.now() + SimDuration::nanos(700), event + 1);
                // A same-time local event: must process *after* any
                // cross event that shares its timestamp.
                ctx.at(ctx.now() + SimDuration::nanos(700), Local::Tick(event));
            }
        }
    }

    fn build(shards: usize) -> ShardedSim<Ring> {
        let mut sim = ShardedSim::new(
            (0..shards)
                .map(|id| {
                    (
                        Ring {
                            id,
                            shards,
                            log: Vec::new(),
                            hops_left: 3,
                        },
                        SimDuration::nanos(500),
                    )
                })
                .collect(),
        );
        for id in 0..shards {
            sim.schedule(
                id,
                SimTime::ZERO + SimDuration::nanos(13 * id as u64),
                Local::Tick(id as u64 * 1000),
            );
        }
        sim
    }

    type RingLog = Vec<(u64, usize, u64)>;

    fn run(threads: usize) -> (Vec<RingLog>, u64, SimTime) {
        let mut sim = build(4);
        if threads == 1 {
            sim.run_sequential();
        } else {
            sim.run_threaded(threads);
        }
        let events = sim.events_processed();
        let now = sim.now();
        (
            sim.into_worlds().into_iter().map(|w| w.log).collect(),
            events,
            now,
        )
    }

    #[test]
    fn sequential_and_threaded_agree_exactly() {
        let (seq_logs, seq_events, seq_now) = run(1);
        for threads in [2, 3, 4] {
            let (par_logs, par_events, par_now) = run(threads);
            assert_eq!(seq_logs, par_logs, "logs diverged at {threads} threads");
            assert_eq!(seq_events, par_events);
            assert_eq!(seq_now, par_now);
        }
        assert!(seq_events > 0);
    }

    #[test]
    fn cross_events_merge_by_time_src_seq() {
        // Two sources fire same-timestamp cross events at shard 0; the
        // receiver must see them ordered by (time, src, seq).
        struct Sink {
            seen: Vec<(usize, u64)>,
        }
        struct Source {
            id: usize,
        }
        enum W2 {
            Sink(Sink),
            Source(Source),
        }
        impl ShardWorld for W2 {
            type Local = ();
            type Cross = u64;
            fn handle_local(&mut self, _e: (), ctx: &mut ShardCtx<'_, (), u64>) {
                if let W2::Source(s) = self {
                    // Two sends to the same destination at the same
                    // timestamp: seq breaks the tie.
                    let t = ctx.now() + SimDuration::micros(10);
                    ctx.send(0, t, s.id as u64 * 10);
                    ctx.send(0, t, s.id as u64 * 10 + 1);
                }
            }
            fn handle_cross(&mut self, src: usize, event: u64, _ctx: &mut ShardCtx<'_, (), u64>) {
                if let W2::Sink(s) = self {
                    s.seen.push((src, event));
                }
            }
        }
        let mut sim = ShardedSim::new(vec![
            (W2::Sink(Sink { seen: Vec::new() }), SimDuration::nanos(1)),
            (W2::Source(Source { id: 1 }), SimDuration::nanos(1)),
            (W2::Source(Source { id: 2 }), SimDuration::nanos(1)),
        ]);
        // Source 2 fires *first* in wall order but must still merge
        // after source 1's events (same timestamp, higher shard id).
        sim.schedule(2, SimTime::ZERO, ());
        sim.schedule(1, SimTime::ZERO, ());
        sim.run_sequential();
        let worlds = sim.into_worlds();
        let W2::Sink(sink) = &worlds[0] else {
            panic!("shard 0 is the sink")
        };
        assert_eq!(sink.seen, vec![(1, 10), (1, 11), (2, 20), (2, 21)]);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn sends_below_lookahead_panic() {
        struct Bad;
        impl ShardWorld for Bad {
            type Local = ();
            type Cross = ();
            fn handle_local(&mut self, _e: (), ctx: &mut ShardCtx<'_, (), ()>) {
                ctx.send(0, ctx.now(), ());
            }
            fn handle_cross(&mut self, _s: usize, _e: (), _c: &mut ShardCtx<'_, (), ()>) {}
        }
        let mut sim = ShardedSim::new(vec![
            (Bad, SimDuration::micros(1)),
            (Bad, SimDuration::micros(1)),
        ]);
        sim.schedule(0, SimTime::ZERO, ());
        sim.run_sequential();
    }

    #[test]
    fn threaded_matches_on_single_thread_clamp() {
        let mut a = build(4);
        a.run_threaded(1); // falls back to sequential
        let mut b = build(4);
        b.run_sequential();
        assert_eq!(a.events_processed(), b.events_processed());
        let la: Vec<_> = a.into_worlds().into_iter().map(|w| w.log).collect();
        let lb: Vec<_> = b.into_worlds().into_iter().map(|w| w.log).collect();
        assert_eq!(la, lb);
    }
}
