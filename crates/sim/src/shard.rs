//! Conservative (lookahead/null-message style) parallel DES over an
//! explicit **partition plan**.
//!
//! The model is a fixed set of *logical processes* (LPs), each owning
//! a disjoint slice of world state. A [`PartitionPlan`] groups the LPs
//! into *shards*: the unit of concurrency. Each shard runs one
//! [`EventQueue`] timing wheel holding the events of all its member
//! LPs and exchanges timestamped *cross* events with other shards. Two
//! drivers execute any plan:
//!
//! * [`ShardedSim::run_sequential`] multiplexes every shard on the
//!   calling thread, always processing the globally earliest event.
//!   Under the degenerate single-shard plan this collapses to a tight
//!   pop/handle loop on one wheel — no channels, no watermarks, no
//!   cross-shard bookkeeping — recovering single-wheel driver speed.
//! * [`ShardedSim::run_threaded`] runs shards on worker threads under
//!   the conservative watermark protocol: each shard *i* publishes a
//!   promise `W_i` ("I will never again send a cross event with
//!   timestamp `< W_i`"), derived from its next event and the other
//!   shards' promises plus its *lookahead* (the minimum latency any of
//!   its sends adds — a fabric hop, an interrupt entry). A shard may
//!   safely process any event strictly earlier than `min_{j≠i} W_j`.
//!   Cross events are exchanged in per-round batches: one mutex
//!   acquisition per non-empty channel per sync round, not per event,
//!   and the safe horizon is computed once per round instead of once
//!   per event (sound because watermarks only ever grow).
//!
//! # The deterministic merge contract
//!
//! Every plan and every thread count processes each **LP's**
//! subsequence of events in exactly the same order:
//!
//! 1. earliest timestamp first;
//! 2. at equal timestamps, cross events before local events;
//! 3. cross events tie-break by [`MergeKey`] — `(source LP,
//!    destination LP, per-channel send seq)` — which mentions only
//!    LPs, never shards, so the order is partition-invariant;
//! 4. local events at equal times keep timing-wheel FIFO order, and an
//!    LP's locals are only ever scheduled by its own handlers, so the
//!    per-LP restriction of the wheel's FIFO is plan-invariant too.
//!
//! The merge itself is realized *structurally* by
//! [`EventQueue::push_keyed`]: cross events are placed key-sorted
//! among same-instant entries at insertion time, so the hot pop path
//! is the plain wheel pop — there is no side ordering structure to
//! consult per event.
//!
//! Because every cross send must satisfy `ts ≥ now + lookahead` with
//! `lookahead > 0`, same-timestamp events on *different* LPs are
//! causally independent, and each LP mutates only its own slice; any
//! interleaving that preserves per-LP order therefore yields identical
//! world slices. That is what lets `afa-core` promise byte-identical
//! experiment artifacts for any partition plan × any `AFA_THREADS`.
//!
//! # Threaded round protocol
//!
//! Each pump round per shard runs in a fixed order whose soundness the
//! watermark argument depends on:
//!
//! 1. read the safe horizon (the other shards' watermarks, Acquire);
//! 2. drain inbound channels — a sender enqueues and flags a channel
//!    *before* publishing the watermark that covers the message
//!    (Release), so step 1's loads make every message below the
//!    horizon visible to this drain;
//! 3. process events strictly below the horizon;
//! 4. flush outbound sends, batched per destination channel;
//! 5. publish the new watermark promise (Release), after the sends it
//!    covers are visible.
//!
//! Reading the horizon *before* draining is load-bearing: a message
//! below a watermark read at step 1 is guaranteed drained at step 2,
//! whereas a horizon read after the drain could admit a message that
//! arrived between the two and would be processed out of order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::queue::{EventQueue, KeyedEvent, MergeKey};
use crate::time::{SimDuration, SimTime};

/// A grouping of logical processes into shards — the unit the drivers
/// schedule. Plans are pure data: equal plans behave identically, and
/// *every* plan produces byte-identical simulation results (the merge
/// contract orders events by LP, not by shard).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    /// `assignment[lp]` = owning shard.
    assignment: Vec<u16>,
    shards: usize,
}

impl PartitionPlan {
    /// One shard per LP — the finest plan (PR 5's fixed topology).
    pub fn identity(lps: usize) -> Self {
        Self::from_assignment((0..lps).collect())
    }

    /// All LPs fused into one shard — the degenerate plan that turns
    /// both drivers into a single-wheel loop.
    pub fn single(lps: usize) -> Self {
        Self::from_assignment(vec![0; lps])
    }

    /// Builds a plan from an explicit `lp → shard` map.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty or the shard ids do not cover
    /// `0..=max` contiguously (every shard must own at least one LP).
    pub fn from_assignment(assignment: Vec<usize>) -> Self {
        assert!(!assignment.is_empty(), "plan needs at least one LP");
        let shards = assignment.iter().max().map_or(0, |&s| s + 1);
        assert!(shards <= u16::MAX as usize, "too many shards");
        let mut seen = vec![false; shards];
        for &s in &assignment {
            seen[s] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "shard ids must be contiguous from 0 (every shard non-empty)"
        );
        PartitionPlan {
            assignment: assignment.into_iter().map(|s| s as u16).collect(),
            shards,
        }
    }

    /// Number of logical processes.
    pub fn lp_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `lp`.
    pub fn shard_of(&self, lp: usize) -> usize {
        self.assignment[lp] as usize
    }

    /// The LPs owned by `shard`, in ascending order.
    pub fn members(&self, shard: usize) -> Vec<usize> {
        (0..self.assignment.len())
            .filter(|&lp| self.assignment[lp] as usize == shard)
            .collect()
    }

    /// True when every LP is its own shard.
    pub fn is_identity(&self) -> bool {
        self.shards == self.assignment.len()
    }

    /// The raw LP → shard assignment (one entry per LP).
    pub fn assignment(&self) -> &[u16] {
        &self.assignment
    }
}

/// One partition of a sharded world.
///
/// Implementations own the slices of model state belonging to their
/// shard's member LPs and react to their own (local) events and to
/// cross events arriving from other LPs. Under a fused plan one world
/// instance serves several LPs; [`ShardCtx::lp`] names the LP the
/// current event belongs to.
pub trait ShardWorld: Send {
    /// Events an LP schedules for itself.
    type Local: Send;
    /// Events exchanged between LPs.
    type Cross: Send;

    /// Handles one local event popped from this shard's wheel.
    fn handle_local(
        &mut self,
        event: Self::Local,
        ctx: &mut ShardCtx<'_, Self::Local, Self::Cross>,
    );

    /// Handles one cross event sent by LP `src`.
    fn handle_cross(
        &mut self,
        src: usize,
        event: Self::Cross,
        ctx: &mut ShardCtx<'_, Self::Local, Self::Cross>,
    );
}

/// A wheel entry of a sharded run: a local event tagged with its LP,
/// or a cross arrival whose payload is parked in the shard's slab
/// (keeping the wheel entry small and `Copy`-cheap to cascade).
enum Item<L> {
    Local {
        lp: u16,
        event: L,
    },
    Cross {
        src: u16,
        dst: u16,
        seq: u64,
        slot: u32,
    },
}

impl<L> KeyedEvent for Item<L> {
    fn merge_key(&self) -> Option<MergeKey> {
        match *self {
            Item::Local { .. } => None,
            Item::Cross { src, dst, seq, .. } => Some(MergeKey { src, dst, seq }),
        }
    }
}

/// A cross event in flight between two shards.
struct CrossMsg<C> {
    dst_shard: u32,
    time_ns: u64,
    src: u16,
    dst: u16,
    seq: u64,
    payload: C,
}

/// Scheduling context handed to a shard while it processes one event.
pub struct ShardCtx<'a, L, C> {
    lp: usize,
    shard: usize,
    now: SimTime,
    lookahead: SimDuration,
    plan: &'a PartitionPlan,
    queue: &'a mut EventQueue<Item<L>>,
    slab: &'a mut Vec<Option<C>>,
    slab_free: &'a mut Vec<u32>,
    send_seq: &'a mut [u64],
    outbox: &'a mut Vec<CrossMsg<C>>,
    clamped: &'a mut u64,
}

impl<L, C> ShardCtx<'_, L, C> {
    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The logical process the current event belongs to.
    pub fn lp(&self) -> usize {
        self.lp
    }

    /// Schedules a local event for the current LP at an absolute time.
    /// Past instants clamp to the clock and count, exactly like
    /// [`Scheduler::at`](crate::Scheduler::at).
    pub fn at(&mut self, time: SimTime, event: L) {
        if time < self.now {
            crate::driver::note_past_schedule(self.clamped, self.now, time);
        }
        self.queue.push(
            time.max(self.now),
            Item::Local {
                lp: self.lp as u16,
                event,
            },
        );
    }

    /// Schedules a local event for an **explicit** LP at an absolute
    /// time. Only sound for LPs owned by the *current shard* — the
    /// event lands in this shard's wheel, so scheduling for a foreign
    /// LP would break the merge contract. Used by the fusion fast path,
    /// where the hub schedules the settlement event directly on the
    /// job's worker LP.
    ///
    /// # Panics
    ///
    /// Panics if `lp` is not owned by the current shard.
    pub fn at_lp(&mut self, lp: usize, time: SimTime, event: L) {
        assert_eq!(
            self.plan.shard_of(lp),
            self.shard,
            "at_lp target must live on the current shard"
        );
        if time < self.now {
            crate::driver::note_past_schedule(self.clamped, self.now, time);
        }
        self.queue.push(
            time.max(self.now),
            Item::Local {
                lp: lp as u16,
                event,
            },
        );
    }

    /// Re-brands the context as acting for `lp` — subsequent
    /// [`at`](Self::at)/[`send`](Self::send) calls schedule and draw
    /// per-channel sequence numbers as that LP — and returns the
    /// previous LP so the caller can restore it. Used by the fusion
    /// fast path when it settles a macro-event synchronously from
    /// inside another LP's handler: the settlement must emit exactly
    /// the events (and sequence draws) the real completion handler on
    /// the owning LP would have.
    ///
    /// # Panics
    ///
    /// Panics if `lp` is not owned by the current shard.
    pub fn set_acting_lp(&mut self, lp: usize) -> usize {
        assert_eq!(
            self.plan.shard_of(lp),
            self.shard,
            "acting LP must live on the current shard"
        );
        std::mem::replace(&mut self.lp, lp)
    }

    /// Schedules a local event `delay` after the current instant.
    pub fn after(&mut self, delay: SimDuration, event: L) {
        self.queue.push(
            self.now + delay,
            Item::Local {
                lp: self.lp as u16,
                event,
            },
        );
    }

    /// Sends a cross event to LP `dst` (self-sends are allowed and
    /// ordered like any other cross event). When `dst` lives on the
    /// same shard the event goes straight into the local wheel in
    /// merge-key position — fused plans never touch a channel.
    ///
    /// # Panics
    ///
    /// Panics if `time < now + lookahead`: the conservative protocol
    /// is sound only when every send respects the shard's declared
    /// lookahead bound.
    pub fn send(&mut self, dst: usize, time: SimTime, event: C) {
        assert!(
            time >= self.now + self.lookahead,
            "cross-shard send at {time} violates lookahead \
             (now {}, lookahead {} ns)",
            self.now,
            self.lookahead.as_nanos(),
        );
        let n = self.plan.lp_count();
        let channel = &mut self.send_seq[self.lp * n + dst];
        let seq = *channel;
        *channel += 1;
        let dst_shard = self.plan.shard_of(dst);
        if dst_shard == self.shard {
            let slot = park(self.slab, self.slab_free, event);
            self.queue.push_keyed(
                time,
                Item::Cross {
                    src: self.lp as u16,
                    dst: dst as u16,
                    seq,
                    slot,
                },
            );
        } else {
            self.outbox.push(CrossMsg {
                dst_shard: dst_shard as u32,
                time_ns: time.as_nanos(),
                src: self.lp as u16,
                dst: dst as u16,
                seq,
                payload: event,
            });
        }
    }

    /// Re-emits a cross event **as if** LP `src` had sent it — the
    /// de-fuse escape hatch of the fusion fast path. The send draws
    /// `src`'s per-channel sequence number, so a replayed event lands
    /// in exactly the merge-key position the elided original would
    /// have occupied. Unlike [`ShardCtx::send`] there is no lookahead
    /// floor: the replayed event may be scheduled at the current
    /// instant (it pops after the running handler, in key order among
    /// same-time entries), which is only sound intra-shard — hence the
    /// same-shard restriction.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not owned by the current shard, or
    /// if `time` is in the past.
    pub fn send_from(&mut self, src: usize, dst: usize, time: SimTime, event: C) {
        assert_eq!(
            self.plan.shard_of(src),
            self.shard,
            "send_from source must live on the current shard"
        );
        assert_eq!(
            self.plan.shard_of(dst),
            self.shard,
            "send_from destination must live on the current shard"
        );
        assert!(time >= self.now, "send_from must not target the past");
        let n = self.plan.lp_count();
        let channel = &mut self.send_seq[src * n + dst];
        let seq = *channel;
        *channel += 1;
        let slot = park(self.slab, self.slab_free, event);
        self.queue.push_keyed(
            time,
            Item::Cross {
                src: src as u16,
                dst: dst as u16,
                seq,
                slot,
            },
        );
    }
}

/// Parks a cross payload in the shard's slab, recycling a freed slot.
fn park<C>(slab: &mut Vec<Option<C>>, free: &mut Vec<u32>, payload: C) -> u32 {
    match free.pop() {
        Some(slot) => {
            slab[slot as usize] = Some(payload);
            slot
        }
        None => {
            slab.push(Some(payload));
            (slab.len() - 1) as u32
        }
    }
}

struct ShardState<W: ShardWorld> {
    world: W,
    queue: EventQueue<Item<W::Local>>,
    /// Parked cross payloads referenced by wheel-resident
    /// `Item::Cross` entries.
    slab: Vec<Option<W::Cross>>,
    slab_free: Vec<u32>,
    /// This shard's stable id under the run's plan.
    id: usize,
    /// Per-`(src LP, dst LP)` send counters, `lp_count²` flattened;
    /// only the rows of this shard's member LPs are ever touched, so
    /// counters are a property of the LP channel, not of the plan.
    send_seq: Vec<u64>,
    lookahead: SimDuration,
    now: SimTime,
    processed: u64,
    clamped: u64,
}

impl<W: ShardWorld> ShardState<W> {
    /// Timestamp of the earliest unprocessed event (local or cross).
    fn next_time_ns(&mut self) -> Option<u64> {
        self.queue.next_time().map(SimTime::as_nanos)
    }

    /// Accepts a cross event from another shard, placing it in
    /// merge-key position.
    fn receive(&mut self, msg: CrossMsg<W::Cross>) {
        debug_assert!(
            msg.time_ns > self.now.as_nanos(),
            "cross arrival must be in the receiver's strict future"
        );
        let slot = park(&mut self.slab, &mut self.slab_free, msg.payload);
        self.queue.push_keyed(
            SimTime::from_nanos(msg.time_ns),
            Item::Cross {
                src: msg.src,
                dst: msg.dst,
                seq: msg.seq,
                slot,
            },
        );
    }

    /// Processes the earliest event. Returns false when nothing is
    /// queued. Ties are fully resolved by the wheel (clause 2–4 of the
    /// merge contract are structural), so this is a plain pop.
    fn step(&mut self, plan: &PartitionPlan, outbox: &mut Vec<CrossMsg<W::Cross>>) -> bool {
        let Some((time, item)) = self.queue.pop() else {
            return false;
        };
        self.now = time;
        self.processed += 1;
        match item {
            Item::Local { lp, event } => {
                let mut ctx = ShardCtx {
                    lp: lp as usize,
                    shard: self.id,
                    now: time,
                    lookahead: self.lookahead,
                    plan,
                    queue: &mut self.queue,
                    slab: &mut self.slab,
                    slab_free: &mut self.slab_free,
                    send_seq: &mut self.send_seq,
                    outbox,
                    clamped: &mut self.clamped,
                };
                self.world.handle_local(event, &mut ctx);
            }
            Item::Cross { src, dst, slot, .. } => {
                let payload = self.slab[slot as usize].take().expect("parked cross");
                self.slab_free.push(slot);
                let mut ctx = ShardCtx {
                    lp: dst as usize,
                    shard: self.id,
                    now: time,
                    lookahead: self.lookahead,
                    plan,
                    queue: &mut self.queue,
                    slab: &mut self.slab,
                    slab_free: &mut self.slab_free,
                    send_seq: &mut self.send_seq,
                    outbox,
                    clamped: &mut self.clamped,
                };
                self.world.handle_cross(src as usize, payload, &mut ctx);
            }
        }
        true
    }
}

/// One inter-shard channel: a batch vector plus a dirty flag so idle
/// shards skip the lock entirely when nothing arrived.
struct Channel<C> {
    data: Mutex<Vec<CrossMsg<C>>>,
    flagged: AtomicBool,
}

/// Soft bound on undrained messages per channel; producers spin until
/// the consumer drains (the consumer drains unconditionally on every
/// pump round, so this cannot deadlock). A batch append may overshoot
/// the bound — it is back-pressure, not a capacity guarantee.
const MAILBOX_CAP: usize = 8192;

/// A sharded simulation: a [`PartitionPlan`], one [`ShardWorld`] per
/// shard, and the two drivers that execute them.
pub struct ShardedSim<W: ShardWorld> {
    plan: PartitionPlan,
    shards: Vec<ShardState<W>>,
    outbox: Vec<CrossMsg<W::Cross>>,
    flushed_events: u64,
    flushed_clamped: u64,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Builds a simulation on the identity plan from `(world,
    /// lookahead)` pairs, one per LP. LP ids are the vector indices
    /// and must stay stable across runs — they are part of the merge
    /// contract.
    pub fn new(shards: Vec<(W, SimDuration)>) -> Self {
        let plan = PartitionPlan::identity(shards.len());
        Self::with_plan(plan, shards)
    }

    /// Builds a simulation on an explicit plan from `(world,
    /// lookahead)` pairs, one per **shard** (in shard-id order). Each
    /// world must own the state slices of all its shard's member LPs,
    /// and each lookahead must be the minimum over those LPs — fusing
    /// can only tighten lookahead, never loosen it.
    pub fn with_plan(plan: PartitionPlan, shards: Vec<(W, SimDuration)>) -> Self {
        assert_eq!(
            shards.len(),
            plan.shard_count(),
            "one world per shard of the plan"
        );
        let lps = plan.lp_count();
        let shards = shards
            .into_iter()
            .enumerate()
            .map(|(id, (world, lookahead))| {
                assert!(
                    !lookahead.is_zero(),
                    "conservative sync requires positive lookahead"
                );
                ShardState {
                    world,
                    queue: EventQueue::new(),
                    slab: Vec::new(),
                    slab_free: Vec::new(),
                    id,
                    send_seq: vec![0; lps * lps],
                    lookahead,
                    now: SimTime::ZERO,
                    processed: 0,
                    clamped: 0,
                }
            })
            .collect();
        ShardedSim {
            plan,
            shards,
            outbox: Vec::new(),
            flushed_events: 0,
            flushed_clamped: 0,
        }
    }

    /// The plan this simulation runs under.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Seeds an initial local event on `lp`.
    pub fn schedule(&mut self, lp: usize, time: SimTime, event: W::Local) {
        let shard = self.plan.shard_of(lp);
        self.shards[shard].queue.push(
            time,
            Item::Local {
                lp: lp as u16,
                event,
            },
        );
    }

    /// The latest instant any shard has reached (equals the timestamp
    /// of the last event processed anywhere once a run completes).
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.now)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Total past-time schedules clamped across all shards.
    pub fn clamped_past_schedules(&self) -> u64 {
        self.shards.iter().map(|s| s.clamped).sum()
    }

    /// Consumes the simulation, returning the shard worlds in shard-id
    /// order (one per shard of the plan).
    pub fn into_worlds(self) -> Vec<W> {
        self.shards.into_iter().map(|s| s.world).collect()
    }

    /// Flushes processed/clamped deltas to the process-wide
    /// [`metrics`](crate::metrics) counters (batched, like
    /// [`Simulation`](crate::Simulation)).
    fn flush_metrics(&mut self) {
        let events = self.events_processed();
        let clamped = self.clamped_past_schedules();
        crate::metrics::add_events(events - self.flushed_events);
        crate::metrics::add_clamped_past(clamped - self.flushed_clamped);
        self.flushed_events = events;
        self.flushed_clamped = clamped;
    }

    /// Runs every shard to completion on the calling thread, always
    /// advancing the shard holding the globally earliest event (ties
    /// to the lowest shard id — which cannot matter, because
    /// equal-time events on different LPs are causally independent
    /// under the lookahead discipline).
    ///
    /// The scan caches the *runner-up* time: after picking the
    /// earliest shard it keeps stepping that same shard until its next
    /// event would pass the runner-up (or a delivery lands below it),
    /// so the common pattern — one shard briefly hot — costs one pop
    /// per event, not one full scan per event. A single-shard plan
    /// never leaves the inner loop.
    pub fn run_sequential(&mut self) {
        let Self {
            plan,
            shards,
            outbox,
            ..
        } = self;
        let n = shards.len();
        if n == 1 {
            let shard = &mut shards[0];
            while shard.step(plan, outbox) {
                debug_assert!(outbox.is_empty(), "single-shard sends are all intra-shard");
            }
            self.flush_metrics();
            return;
        }
        loop {
            let mut best: Option<(u64, usize)> = None;
            let mut runner = u64::MAX;
            for (i, shard) in shards.iter_mut().enumerate() {
                if let Some(t) = shard.next_time_ns() {
                    match best {
                        None => best = Some((t, i)),
                        Some((bt, _)) if t < bt => {
                            runner = bt;
                            best = Some((t, i));
                        }
                        Some(_) => runner = runner.min(t),
                    }
                }
            }
            let Some((_, i)) = best else { break };
            loop {
                let stepped = shards[i].step(plan, outbox);
                debug_assert!(stepped, "scan found an event");
                // Deliver sends; one landing below the runner-up may
                // create an earlier event on another shard, so the
                // cached horizon is stale and we rescan.
                let mut stale = false;
                for msg in outbox.drain(..) {
                    stale |= msg.time_ns < runner;
                    shards[msg.dst_shard as usize].receive(msg);
                }
                if stale {
                    break;
                }
                match shards[i].next_time_ns() {
                    Some(t) if t < runner => {}
                    _ => break,
                }
            }
        }
        self.flush_metrics();
    }

    /// Runs the shards on `threads` worker threads under the
    /// conservative watermark protocol. `threads` is clamped to
    /// `1..=shard_count`; one thread falls back to the sequential
    /// driver and produces identical results, as does any other thread
    /// count.
    pub fn run_threaded(&mut self, threads: usize) {
        let n = self.shards.len();
        let threads = threads.clamp(1, n);
        if threads == 1 {
            self.run_sequential();
            return;
        }

        let watermarks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let idle: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let sent = AtomicU64::new(0);
        let received = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let channels: Vec<Vec<Channel<W::Cross>>> = (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| Channel {
                        data: Mutex::new(Vec::new()),
                        flagged: AtomicBool::new(false),
                    })
                    .collect()
            })
            .collect();

        // Partition shards round-robin across threads, preserving ids.
        let mut groups: Vec<Vec<ShardState<W>>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, shard) in self.shards.drain(..).enumerate() {
            groups[i % threads].push(shard);
        }

        let plan = &self.plan;
        let watermarks = &watermarks;
        let idle = &idle;
        let sent = &sent;
        let received = &received;
        let done = &done;
        let channels = &channels;

        let finished: Vec<Vec<ShardState<W>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .map(|(tid, group)| {
                    scope.spawn(move || {
                        pump_group(
                            tid, group, plan, watermarks, idle, sent, received, done, channels,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });

        let mut shards: Vec<Option<ShardState<W>>> = (0..n).map(|_| None).collect();
        for group in finished {
            for shard in group {
                let id = shard.id;
                shards[id] = Some(shard);
            }
        }
        self.shards = shards
            .into_iter()
            .map(|s| s.expect("every shard returned"))
            .collect();
        self.flush_metrics();
    }
}

/// The per-thread pump loop of the parallel driver. See the module
/// docs for the round protocol and why its step order is load-bearing.
#[allow(clippy::too_many_arguments)]
fn pump_group<W: ShardWorld>(
    tid: usize,
    mut group: Vec<ShardState<W>>,
    plan: &PartitionPlan,
    watermarks: &[AtomicU64],
    idle: &[AtomicBool],
    sent: &AtomicU64,
    received: &AtomicU64,
    done: &AtomicBool,
    channels: &[Vec<Channel<W::Cross>>],
) -> Vec<ShardState<W>> {
    let n = watermarks.len();
    let mut outbox: Vec<CrossMsg<W::Cross>> = Vec::new();
    let mut drained: Vec<CrossMsg<W::Cross>> = Vec::new();
    // Per-destination flush batches, reused across rounds.
    let mut batches: Vec<Vec<CrossMsg<W::Cross>>> = (0..n).map(|_| Vec::new()).collect();
    while !done.load(Ordering::Acquire) {
        let mut progress = false;
        for shard in &mut group {
            let id = shard.id;
            // 1. Safe horizon, read *before* the drain.
            let safe = min_other_watermark(watermarks, id);

            // 2. Drain inbound channels; the dirty flag lets quiescent
            // rounds skip every lock.
            let mut got = 0u64;
            for channel in &channels[id][..n] {
                if !channel.flagged.swap(false, Ordering::Acquire) {
                    continue;
                }
                let mut data = channel.data.lock().expect("channel");
                drained.append(&mut data);
                drop(data);
            }
            for msg in drained.drain(..) {
                shard.receive(msg);
                got += 1;
            }
            if got > 0 {
                received.fetch_add(got, Ordering::AcqRel);
            }

            // 3. Process every event strictly below the horizon. The
            // snapshot is conservative — watermarks only grow — so no
            // per-event recomputation is needed.
            while let Some(next) = shard.next_time_ns() {
                if next >= safe {
                    break;
                }
                shard.step(plan, &mut outbox);
                progress = true;
                for msg in outbox.drain(..) {
                    batches[msg.dst_shard as usize].push(msg);
                }
            }

            // 4. Flush sends: one lock per non-empty destination
            // channel per round.
            for batch in batches.iter_mut() {
                if batch.is_empty() {
                    continue;
                }
                let dst = batch[0].dst_shard as usize;
                let count = batch.len() as u64;
                loop {
                    let mut data = channels[dst][id].data.lock().expect("channel");
                    if data.len() < MAILBOX_CAP {
                        data.append(batch);
                        break;
                    }
                    drop(data);
                    std::hint::spin_loop();
                }
                channels[dst][id].flagged.store(true, Ordering::Release);
                sent.fetch_add(count, Ordering::AcqRel);
            }

            // 5. Publish the new promise: nothing this shard ever
            // sends again can be earlier than its next event (or the
            // earliest event another shard could still send it), plus
            // its lookahead. A fresh horizon read here is sound — a
            // not-yet-drained arrival has a timestamp at or above it.
            let safe = min_other_watermark(watermarks, id);
            let head = shard.next_time_ns().unwrap_or(u64::MAX);
            let promise = head.min(safe).saturating_add(shard.lookahead.as_nanos());
            let current = watermarks[id].load(Ordering::Relaxed);
            if promise > current {
                watermarks[id].store(promise, Ordering::Release);
            }
            idle[id].store(shard.next_time_ns().is_none(), Ordering::Release);
        }

        if !progress {
            // Termination: all shards idle with no message in flight,
            // stable across a double read (thread 0 decides).
            if tid == 0 && all_quiet(idle, sent, received) && all_quiet(idle, sent, received) {
                done.store(true, Ordering::Release);
                break;
            }
            std::thread::yield_now();
        }
    }
    group
}

fn min_other_watermark(watermarks: &[AtomicU64], id: usize) -> u64 {
    let mut safe = u64::MAX;
    for (j, w) in watermarks.iter().enumerate() {
        if j != id {
            safe = safe.min(w.load(Ordering::Acquire));
        }
    }
    safe
}

fn all_quiet(idle: &[AtomicBool], sent: &AtomicU64, received: &AtomicU64) -> bool {
    let s = sent.load(Ordering::Acquire);
    let r = received.load(Ordering::Acquire);
    s == r && idle.iter().all(|f| f.load(Ordering::Acquire))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test world: shards pass a token around the ring, each hop
    /// recording what it saw. Local "tick" events also fire to
    /// exercise cross-vs-local tie ordering.
    struct Ring {
        id: usize,
        shards: usize,
        log: Vec<(u64, usize, u64)>, // (time, src, value)
        hops_left: u64,
    }

    #[derive(Debug)]
    enum Local {
        Tick(u64),
    }

    impl ShardWorld for Ring {
        type Local = Local;
        type Cross = u64;

        fn handle_local(&mut self, event: Local, ctx: &mut ShardCtx<'_, Local, u64>) {
            let Local::Tick(v) = event;
            self.log.push((ctx.now().as_nanos(), usize::MAX, v));
            if self.hops_left > 0 {
                self.hops_left -= 1;
                let dst = (self.id + 1) % self.shards;
                ctx.send(dst, ctx.now() + SimDuration::nanos(700), v + 1);
            }
        }

        fn handle_cross(&mut self, src: usize, event: u64, ctx: &mut ShardCtx<'_, Local, u64>) {
            self.log.push((ctx.now().as_nanos(), src, event));
            if event < 200 {
                let dst = (self.id + 1) % self.shards;
                ctx.send(dst, ctx.now() + SimDuration::nanos(700), event + 1);
                // A same-time local event: must process *after* any
                // cross event that shares its timestamp.
                ctx.at(ctx.now() + SimDuration::nanos(700), Local::Tick(event));
            }
        }
    }

    fn build(shards: usize) -> ShardedSim<Ring> {
        let mut sim = ShardedSim::new(
            (0..shards)
                .map(|id| {
                    (
                        Ring {
                            id,
                            shards,
                            log: Vec::new(),
                            hops_left: 3,
                        },
                        SimDuration::nanos(500),
                    )
                })
                .collect(),
        );
        for id in 0..shards {
            sim.schedule(
                id,
                SimTime::ZERO + SimDuration::nanos(13 * id as u64),
                Local::Tick(id as u64 * 1000),
            );
        }
        sim
    }

    type RingLog = Vec<(u64, usize, u64)>;

    fn run(threads: usize) -> (Vec<RingLog>, u64, SimTime) {
        let mut sim = build(4);
        if threads == 1 {
            sim.run_sequential();
        } else {
            sim.run_threaded(threads);
        }
        let events = sim.events_processed();
        let now = sim.now();
        (
            sim.into_worlds().into_iter().map(|w| w.log).collect(),
            events,
            now,
        )
    }

    #[test]
    fn sequential_and_threaded_agree_exactly() {
        let (seq_logs, seq_events, seq_now) = run(1);
        for threads in [2, 3, 4] {
            let (par_logs, par_events, par_now) = run(threads);
            assert_eq!(seq_logs, par_logs, "logs diverged at {threads} threads");
            assert_eq!(seq_events, par_events);
            assert_eq!(seq_now, par_now);
        }
        assert!(seq_events > 0);
    }

    #[test]
    fn cross_events_merge_by_time_src_seq() {
        // Two sources fire same-timestamp cross events at shard 0; the
        // receiver must see them ordered by (time, src, seq).
        struct Sink {
            seen: Vec<(usize, u64)>,
        }
        struct Source {
            id: usize,
        }
        enum W2 {
            Sink(Sink),
            Source(Source),
        }
        impl ShardWorld for W2 {
            type Local = ();
            type Cross = u64;
            fn handle_local(&mut self, _e: (), ctx: &mut ShardCtx<'_, (), u64>) {
                if let W2::Source(s) = self {
                    // Two sends to the same destination at the same
                    // timestamp: seq breaks the tie.
                    let t = ctx.now() + SimDuration::micros(10);
                    ctx.send(0, t, s.id as u64 * 10);
                    ctx.send(0, t, s.id as u64 * 10 + 1);
                }
            }
            fn handle_cross(&mut self, src: usize, event: u64, _ctx: &mut ShardCtx<'_, (), u64>) {
                if let W2::Sink(s) = self {
                    s.seen.push((src, event));
                }
            }
        }
        let mut sim = ShardedSim::new(vec![
            (W2::Sink(Sink { seen: Vec::new() }), SimDuration::nanos(1)),
            (W2::Source(Source { id: 1 }), SimDuration::nanos(1)),
            (W2::Source(Source { id: 2 }), SimDuration::nanos(1)),
        ]);
        // Source 2 fires *first* in wall order but must still merge
        // after source 1's events (same timestamp, higher shard id).
        sim.schedule(2, SimTime::ZERO, ());
        sim.schedule(1, SimTime::ZERO, ());
        sim.run_sequential();
        let worlds = sim.into_worlds();
        let W2::Sink(sink) = &worlds[0] else {
            panic!("shard 0 is the sink")
        };
        assert_eq!(sink.seen, vec![(1, 10), (1, 11), (2, 20), (2, 21)]);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn sends_below_lookahead_panic() {
        struct Bad;
        impl ShardWorld for Bad {
            type Local = ();
            type Cross = ();
            fn handle_local(&mut self, _e: (), ctx: &mut ShardCtx<'_, (), ()>) {
                ctx.send(0, ctx.now(), ());
            }
            fn handle_cross(&mut self, _s: usize, _e: (), _c: &mut ShardCtx<'_, (), ()>) {}
        }
        let mut sim = ShardedSim::new(vec![
            (Bad, SimDuration::micros(1)),
            (Bad, SimDuration::micros(1)),
        ]);
        sim.schedule(0, SimTime::ZERO, ());
        sim.run_sequential();
    }

    #[test]
    fn threaded_matches_on_single_thread_clamp() {
        let mut a = build(4);
        a.run_threaded(1); // falls back to sequential
        let mut b = build(4);
        b.run_sequential();
        assert_eq!(a.events_processed(), b.events_processed());
        let la: Vec<_> = a.into_worlds().into_iter().map(|w| w.log).collect();
        let lb: Vec<_> = b.into_worlds().into_iter().map(|w| w.log).collect();
        assert_eq!(la, lb);
    }

    /// A *fusible* ring world: state is held per LP, so one instance
    /// can serve any subset of the LPs — the shape `afa-core`'s world
    /// replicas take. Used to pin the plan-invariance contract at the
    /// engine level.
    #[derive(Clone)]
    struct MultiRing {
        lps: usize,
        logs: Vec<Vec<(u64, usize, u64)>>, // per-LP (time, src, value)
        hops_left: Vec<u64>,
    }

    impl MultiRing {
        fn fresh(lps: usize) -> Self {
            MultiRing {
                lps,
                logs: vec![Vec::new(); lps],
                hops_left: vec![4; lps],
            }
        }
    }

    impl ShardWorld for MultiRing {
        type Local = Local;
        type Cross = u64;

        fn handle_local(&mut self, event: Local, ctx: &mut ShardCtx<'_, Local, u64>) {
            let Local::Tick(v) = event;
            let lp = ctx.lp();
            self.logs[lp].push((ctx.now().as_nanos(), usize::MAX, v));
            if self.hops_left[lp] > 0 {
                self.hops_left[lp] -= 1;
                ctx.send(
                    (lp + 1) % self.lps,
                    ctx.now() + SimDuration::nanos(700),
                    v + 1,
                );
            }
        }

        fn handle_cross(&mut self, src: usize, event: u64, ctx: &mut ShardCtx<'_, Local, u64>) {
            let lp = ctx.lp();
            self.logs[lp].push((ctx.now().as_nanos(), src, event));
            if event < 300 {
                ctx.send(
                    (lp + 1) % self.lps,
                    ctx.now() + SimDuration::nanos(700),
                    event + 1,
                );
                ctx.at(ctx.now() + SimDuration::nanos(700), Local::Tick(event));
            }
        }
    }

    /// Runs the MultiRing under `plan` × `threads` and returns the
    /// per-LP logs stitched from each LP's owning shard.
    fn run_multi(plan: PartitionPlan, threads: usize) -> (Vec<RingLog>, u64, SimTime) {
        const LPS: usize = 6;
        assert_eq!(plan.lp_count(), LPS);
        let shards = (0..plan.shard_count())
            .map(|_| (MultiRing::fresh(LPS), SimDuration::nanos(500)))
            .collect();
        let mut sim = ShardedSim::with_plan(plan.clone(), shards);
        for lp in 0..LPS {
            sim.schedule(
                lp,
                SimTime::ZERO + SimDuration::nanos(13 * lp as u64),
                Local::Tick(lp as u64 * 1000),
            );
        }
        sim.run_threaded(threads);
        let events = sim.events_processed();
        let now = sim.now();
        let worlds = sim.into_worlds();
        let logs = (0..LPS)
            .map(|lp| worlds[plan.shard_of(lp)].logs[lp].clone())
            .collect();
        (logs, events, now)
    }

    #[test]
    fn every_plan_and_thread_count_agrees_per_lp() {
        let (base_logs, base_events, base_now) = run_multi(PartitionPlan::single(6), 1);
        assert!(base_events > 0);
        let plans = [
            PartitionPlan::identity(6),
            PartitionPlan::single(6),
            PartitionPlan::from_assignment(vec![0, 1, 0, 1, 0, 1]),
            PartitionPlan::from_assignment(vec![0, 0, 0, 1, 1, 2]),
        ];
        for plan in plans {
            for threads in [1, 2, 4] {
                let (logs, events, now) = run_multi(plan.clone(), threads);
                assert_eq!(
                    logs, base_logs,
                    "per-LP streams diverged under {plan:?} × {threads} threads"
                );
                assert_eq!(events, base_events);
                assert_eq!(now, base_now);
            }
        }
    }

    #[test]
    fn plan_accessors_are_consistent() {
        let plan = PartitionPlan::from_assignment(vec![0, 1, 0, 2, 1]);
        assert_eq!(plan.lp_count(), 5);
        assert_eq!(plan.shard_count(), 3);
        assert_eq!(plan.members(0), vec![0, 2]);
        assert_eq!(plan.members(1), vec![1, 4]);
        assert_eq!(plan.members(2), vec![3]);
        assert!(!plan.is_identity());
        assert!(PartitionPlan::identity(4).is_identity());
        assert_eq!(PartitionPlan::single(4).shard_count(), 1);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gappy_shard_ids_are_rejected() {
        let _ = PartitionPlan::from_assignment(vec![0, 2]);
    }
}
