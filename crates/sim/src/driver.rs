//! The generic simulation driver.
//!
//! A simulation is a [`World`] (all mutable model state) plus an
//! [`EventQueue`]. The driver pops the earliest event, advances the
//! clock, and asks the world to handle it; handling may schedule further
//! events through the [`Scheduler`] handed to the callback.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Scheduling interface passed to [`World::handle`], through which the
/// world enqueues follow-up events.
///
/// Borrowing the queue separately from the world lets the world mutate
/// itself freely while scheduling.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    clamped_past: &'a mut u64,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after now.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Simulated time only moves forward: a `time` in the past is
    /// clamped to now (keeping the run well-ordered) and counted on
    /// [`Simulation::clamped_past_schedules`], with a log line on the
    /// first occurrence in debug builds — a non-zero counter means a
    /// model bug that would otherwise hide as silently reordered
    /// events.
    pub fn at(&mut self, time: SimTime, event: E) {
        if time < self.now {
            note_past_schedule(self.clamped_past, self.now, time);
        }
        self.queue.push(time.max(self.now), event);
    }

    /// Schedules `event` to fire immediately (at the current instant,
    /// after all events already queued for this instant).
    pub fn immediately(&mut self, event: E) {
        self.queue.push(self.now, event);
    }
}

/// Bumps a past-schedule counter and reports the offence through the
/// structured [`crate::trace::set_past_schedule_hook`] hook (silent
/// when no hook is installed — never stderr, so parallel shards cannot
/// interleave output).
#[inline]
pub(crate) fn note_past_schedule(counter: &mut u64, now: SimTime, requested: SimTime) {
    crate::trace::note_past_schedule(now, requested);
    *counter += 1;
}

/// The mutable state of a simulation and its event semantics.
pub trait World {
    /// The event type driving this world.
    type Event;

    /// Handles one event at its scheduled time, optionally scheduling
    /// follow-ups via `sched`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Outcome of a single [`Simulation::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was processed; the clock now reads the contained time.
    Advanced(SimTime),
    /// No events remain.
    Idle,
}

/// A generic discrete-event simulation: a world plus its event queue
/// and clock.
///
/// # Example
///
/// ```
/// use afa_sim::{Simulation, SimDuration, World};
///
/// struct Counter {
///     fired: u32,
/// }
///
/// impl World for Counter {
///     type Event = ();
///     fn handle(&mut self, _e: (), sched: &mut afa_sim::Scheduler<'_, ()>) {
///         self.fired += 1;
///         if self.fired < 3 {
///             sched.after(SimDuration::micros(10), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter { fired: 0 });
/// sim.schedule_in(SimDuration::ZERO, ());
/// sim.run_to_completion();
/// assert_eq!(sim.world().fired, 3);
/// assert_eq!(sim.now().as_micros_f64(), 20.0);
/// ```
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    processed: u64,
    /// Events already reported to [`crate::metrics`].
    flushed: u64,
    /// Past-time schedules clamped to the clock (see
    /// [`Simulation::clamped_past_schedules`]).
    clamped_past: u64,
    /// Clamped schedules already reported to [`crate::metrics`].
    flushed_clamped: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero with an empty queue.
    pub fn new(world: W) -> Self {
        Self::with_capacity(world, 0)
    }

    /// Creates a simulation at time zero whose event queue is pre-sized
    /// for roughly `capacity` concurrently pending events.
    pub fn with_capacity(world: W, capacity: usize) -> Self {
        Simulation {
            world,
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            processed: 0,
            flushed: 0,
            clamped_past: 0,
            flushed_clamped: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events that were scheduled at an instant already in
    /// the past and clamped to the clock. Always 0 for a healthy
    /// model: anything else means event ordering silently diverged
    /// from what the world asked for.
    pub fn clamped_past_schedules(&self) -> u64 {
        self.clamped_past
    }

    /// Reports newly processed events to [`crate::metrics`] (batched so
    /// [`Simulation::step`] never touches an atomic).
    fn flush_metrics(&mut self) {
        crate::metrics::add_events(self.processed - self.flushed);
        self.flushed = self.processed;
        crate::metrics::add_clamped_past(self.clamped_past - self.flushed_clamped);
        self.flushed_clamped = self.clamped_past;
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event at an absolute time. Past instants clamp to
    /// the clock and count on [`Simulation::clamped_past_schedules`].
    pub fn schedule_at(&mut self, time: SimTime, event: W::Event) {
        if time < self.now {
            note_past_schedule(&mut self.clamped_past, self.now, time);
        }
        self.queue.push(time.max(self.now), event);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: W::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Processes the earliest pending event, advancing the clock.
    pub fn step(&mut self) -> StepOutcome {
        match self.queue.pop() {
            None => StepOutcome::Idle,
            Some((time, event)) => {
                self.now = time;
                self.processed += 1;
                let mut sched = Scheduler {
                    now: time,
                    queue: &mut self.queue,
                    clamped_past: &mut self.clamped_past,
                };
                self.world.handle(event, &mut sched);
                StepOutcome::Advanced(time)
            }
        }
    }

    /// Runs until no events remain.
    pub fn run_to_completion(&mut self) {
        while self.step() != StepOutcome::Idle {}
        self.flush_metrics();
    }

    /// Runs until the clock passes `deadline` or no events remain.
    ///
    /// Events scheduled exactly at `deadline` are processed; the first
    /// event strictly after it is left pending.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.next_time() {
            if t > deadline {
                // Stopping early: the clock rests at the deadline.
                self.now = self.now.max(deadline);
                break;
            }
            self.step();
        }
        self.flush_metrics();
    }
}

impl<W: World + std::fmt::Debug> std::fmt::Debug for Simulation<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .field("world", &self.world)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    enum Ev {
        Mark(u32),
        Chain { remaining: u32, gap_ns: u64 },
    }

    impl World for Recorder {
        type Event = Ev;

        fn handle(&mut self, event: Ev, sched: &mut Scheduler<'_, Ev>) {
            match event {
                Ev::Mark(id) => self.seen.push((sched.now().as_nanos(), id)),
                Ev::Chain { remaining, gap_ns } => {
                    self.seen.push((sched.now().as_nanos(), remaining));
                    if remaining > 0 {
                        sched.after(
                            SimDuration::nanos(gap_ns),
                            Ev::Chain {
                                remaining: remaining - 1,
                                gap_ns,
                            },
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn processes_in_order_and_advances_clock() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::from_nanos(50), Ev::Mark(2));
        sim.schedule_at(SimTime::from_nanos(10), Ev::Mark(1));
        sim.run_to_completion();
        assert_eq!(sim.world().seen, vec![(10, 1), (50, 2)]);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn chained_events_reschedule() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_in(
            SimDuration::ZERO,
            Ev::Chain {
                remaining: 3,
                gap_ns: 100,
            },
        );
        sim.run_to_completion();
        assert_eq!(sim.world().seen, vec![(0, 3), (100, 2), (200, 1), (300, 0)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Recorder::default());
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(i * 100), Ev::Mark(i as u32));
        }
        sim.run_until(SimTime::from_nanos(450));
        assert_eq!(sim.world().seen.len(), 5);
        assert_eq!(sim.pending_events(), 5);
        // Event exactly at the deadline is included.
        sim.run_until(SimTime::from_nanos(500));
        assert_eq!(sim.world().seen.len(), 6);
    }

    #[test]
    fn idle_when_empty() {
        let mut sim = Simulation::new(Recorder::default());
        assert_eq!(sim.step(), StepOutcome::Idle);
    }

    #[test]
    fn past_schedules_clamp_and_count() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(SimTime::from_nanos(100), Ev::Mark(1));
        assert_eq!(sim.step(), StepOutcome::Advanced(SimTime::from_nanos(100)));
        assert_eq!(sim.clamped_past_schedules(), 0);
        // The clock reads 100; scheduling at 40 is a model bug — the
        // event fires now, and the counter records the clamp.
        sim.schedule_at(SimTime::from_nanos(40), Ev::Mark(2));
        assert_eq!(sim.clamped_past_schedules(), 1);
        sim.run_to_completion();
        assert_eq!(sim.world().seen, vec![(100, 1), (100, 2)]);
    }

    #[test]
    fn scheduler_counts_past_schedules_from_handlers() {
        #[derive(Debug, Default)]
        struct PastScheduler {
            fired: u32,
        }
        impl World for PastScheduler {
            type Event = ();
            fn handle(&mut self, _e: (), sched: &mut Scheduler<'_, ()>) {
                self.fired += 1;
                if self.fired == 1 {
                    // Deliberately schedule into the past.
                    sched.at(SimTime::ZERO, ());
                }
            }
        }
        let mut sim = Simulation::new(PastScheduler::default());
        sim.schedule_at(SimTime::from_nanos(50), ());
        sim.run_to_completion();
        assert_eq!(sim.world().fired, 2);
        assert_eq!(sim.clamped_past_schedules(), 1);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut sim = Simulation::with_capacity(Recorder::default(), 256);
        sim.schedule_at(SimTime::from_nanos(10), Ev::Mark(1));
        sim.schedule_at(SimTime::from_nanos(5), Ev::Mark(0));
        sim.run_to_completion();
        assert_eq!(sim.world().seen, vec![(5, 0), (10, 1)]);
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn runs_flush_the_global_event_counter() {
        let before = crate::metrics::events_processed_total();
        let mut sim = Simulation::new(Recorder::default());
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(i * 10), Ev::Mark(i as u32));
        }
        sim.run_until(SimTime::from_nanos(45));
        sim.run_to_completion();
        assert_eq!(sim.events_processed(), 10);
        // ≥, not ==: other tests in the process also count.
        assert!(crate::metrics::events_processed_total() >= before + 10);
    }

    #[test]
    fn same_instant_fifo() {
        let mut sim = Simulation::new(Recorder::default());
        for i in 0..5 {
            sim.schedule_at(SimTime::from_nanos(42), Ev::Mark(i));
        }
        sim.run_to_completion();
        let ids: Vec<u32> = sim.world().seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
