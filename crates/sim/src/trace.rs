//! Cause-attribution trace hooks.
//!
//! The paper root-causes tail-latency samples with LTTng. The simulated
//! analogue is a [`TraceSink`] that components notify whenever a latency
//! contribution is incurred, tagged with a [`Cause`]. Experiments can
//! install a [`CauseAccumulator`] to obtain a per-cause latency budget,
//! or [`NullSink`] (the default) to pay nothing.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Why a slice of latency was incurred on an I/O's critical path.
///
/// The variants mirror the interference sources the paper identifies in
/// §IV: scheduler displacement, C-state exits, IRQ misrouting, fabric
/// transfer time, device service time, and firmware housekeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cause {
    /// Time spent executing on a CPU (submit/complete syscall paths).
    CpuWork,
    /// Waiting for the scheduler to run a runnable task (preemption
    /// delay from CPU-bound interference; §IV-B/§IV-C).
    SchedulerDelay,
    /// Waiting for a CPU to exit an idle C-state.
    CStateExit,
    /// Context-switch cost.
    ContextSwitch,
    /// Hardware interrupt dispatch and handler execution.
    IrqHandling,
    /// Extra cost because the completion interrupt fired on a CPU other
    /// than the submitter's (IPI + remote wake-up; §IV-D).
    RemoteCompletion,
    /// Cold-cache penalty after a migration or pollution event.
    CachePollution,
    /// Time on PCIe links and switches.
    Fabric,
    /// Time on the fleet network: RPC serialization, propagation and
    /// in-flight-window queueing between the frontend and an array
    /// (the inter-array analogue of [`Cause::Fabric`]).
    Network,
    /// Normal device service time (controller + flash).
    DeviceService,
    /// Device queueing behind other commands.
    DeviceQueueing,
    /// Stall behind a firmware housekeeping window (SMART; §IV-E).
    Housekeeping,
    /// Stall behind garbage collection (non-FOB extension).
    GarbageCollection,
    /// Waiting in the frontend serving layer (admission queue + QoS
    /// dequeue) before the request's sub-I/Os were dispatched.
    FrontendQueue,
    /// Hybrid-poll oversleep: the completion landed while the thread
    /// was still inside its timed sleep, so the residual sleep — not
    /// any hardware stage — is what the I/O waited on. This is the
    /// latency the hybrid model trades for giving the CPU back.
    PollSleep,
    /// Other / unattributed.
    Other,
}

impl Cause {
    /// Number of cause variants; sizes fixed per-cause tables such as
    /// the I/O ledger's `[SimDuration; Cause::COUNT]`.
    pub const COUNT: usize = Self::ALL.len();

    /// All cause variants, in display order.
    pub const ALL: [Cause; 16] = [
        Cause::CpuWork,
        Cause::SchedulerDelay,
        Cause::CStateExit,
        Cause::ContextSwitch,
        Cause::IrqHandling,
        Cause::RemoteCompletion,
        Cause::CachePollution,
        Cause::Fabric,
        Cause::Network,
        Cause::DeviceService,
        Cause::DeviceQueueing,
        Cause::Housekeeping,
        Cause::GarbageCollection,
        Cause::FrontendQueue,
        Cause::PollSleep,
        Cause::Other,
    ];

    /// The variant's position in [`Cause::ALL`] (declaration order) —
    /// the index used by fixed per-cause tables.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// A short, stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Cause::CpuWork => "cpu_work",
            Cause::SchedulerDelay => "sched_delay",
            Cause::CStateExit => "cstate_exit",
            Cause::ContextSwitch => "ctx_switch",
            Cause::IrqHandling => "irq",
            Cause::RemoteCompletion => "remote_completion",
            Cause::CachePollution => "cache_pollution",
            Cause::Fabric => "fabric",
            Cause::Network => "network",
            Cause::DeviceService => "device_service",
            Cause::DeviceQueueing => "device_queueing",
            Cause::Housekeeping => "housekeeping",
            Cause::GarbageCollection => "gc",
            Cause::FrontendQueue => "frontend_queue",
            Cause::PollSleep => "poll_sleep",
            Cause::Other => "other",
        }
    }
}

impl std::fmt::Display for Cause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Receives latency attributions as the simulation runs.
pub trait TraceSink {
    /// Records that `amount` of latency attributed to `cause` was
    /// incurred at `time` (e.g. by I/O tracked under `tag`).
    fn record(&mut self, time: SimTime, tag: u64, cause: Cause, amount: SimDuration);
}

/// A sink that discards everything; the zero-overhead default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _time: SimTime, _tag: u64, _cause: Cause, _amount: SimDuration) {}
}

/// Accumulates total latency per cause — the simulated analogue of an
/// LTTng post-processing pass.
///
/// # Example
///
/// ```
/// use afa_sim::trace::{Cause, CauseAccumulator, TraceSink};
/// use afa_sim::{SimDuration, SimTime};
///
/// let mut acc = CauseAccumulator::new();
/// acc.record(SimTime::ZERO, 0, Cause::DeviceService, SimDuration::micros(20));
/// acc.record(SimTime::ZERO, 0, Cause::SchedulerDelay, SimDuration::micros(900));
/// assert_eq!(acc.dominant(), Some(Cause::SchedulerDelay));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CauseAccumulator {
    totals: BTreeMap<Cause, SimDuration>,
    counts: BTreeMap<Cause, u64>,
}

impl CauseAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total latency attributed to `cause` so far.
    pub fn total(&self, cause: Cause) -> SimDuration {
        self.totals
            .get(&cause)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Number of attributions recorded for `cause`.
    pub fn count(&self, cause: Cause) -> u64 {
        self.counts.get(&cause).copied().unwrap_or(0)
    }

    /// The cause with the largest accumulated latency, if any.
    pub fn dominant(&self) -> Option<Cause> {
        self.totals.iter().max_by_key(|&(_, d)| *d).map(|(&c, _)| c)
    }

    /// Iterates over `(cause, total, count)` triples in cause order.
    pub fn iter(&self) -> impl Iterator<Item = (Cause, SimDuration, u64)> + '_ {
        self.totals
            .iter()
            .map(move |(&c, &d)| (c, d, self.count(c)))
    }

    /// Adds a pre-aggregated contribution: `total` latency over
    /// `events` attribution events. This is how settled per-I/O
    /// ledgers fold into the run-wide budget — equivalent to `events`
    /// individual [`TraceSink::record`] calls summing to `total`.
    pub fn add(&mut self, cause: Cause, total: SimDuration, events: u64) {
        if events == 0 && total.is_zero() {
            return;
        }
        *self.totals.entry(cause).or_insert(SimDuration::ZERO) += total;
        *self.counts.entry(cause).or_insert(0) += events;
    }

    /// Folds another accumulator's attributions into this one (used to
    /// aggregate budgets across parallel runs).
    pub fn merge(&mut self, other: &CauseAccumulator) {
        for (cause, total, count) in other.iter() {
            *self.totals.entry(cause).or_insert(SimDuration::ZERO) += total;
            *self.counts.entry(cause).or_insert(0) += count;
        }
    }

    /// A frozen snapshot of the per-cause budget, for run manifests.
    pub fn budget(&self) -> CauseBudget {
        CauseBudget {
            rows: self.iter().collect(),
        }
    }
}

/// An immutable per-cause latency budget captured from one run — the
/// manifest-friendly snapshot of a [`CauseAccumulator`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CauseBudget {
    rows: Vec<(Cause, SimDuration, u64)>,
}

impl CauseBudget {
    /// `(cause, total, events)` rows in cause order.
    pub fn rows(&self) -> &[(Cause, SimDuration, u64)] {
        &self.rows
    }

    /// Total attributed latency across all causes.
    pub fn total(&self) -> SimDuration {
        self.rows
            .iter()
            .fold(SimDuration::ZERO, |acc, &(_, d, _)| acc + d)
    }

    /// Whether any attribution was captured.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl TraceSink for CauseAccumulator {
    fn record(&mut self, _time: SimTime, _tag: u64, cause: Cause, amount: SimDuration) {
        *self.totals.entry(cause).or_insert(SimDuration::ZERO) += amount;
        *self.counts.entry(cause).or_insert(0) += 1;
    }
}

/// Lifecycle phase of a *client request* in the frontend serving
/// layer — the request-level analogue of the per-I/O `IoStage` path.
///
/// A request is born at `Arrive`, passes admission (`Admit`) or is
/// dropped (`Shed`), waits in its tenant queue until `Dispatch` fans
/// it out into sub-I/Os, may spawn a duplicate straggler sub-I/O
/// (`HedgeFire`), and settles at `Complete`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RequestPhase {
    /// Open-loop arrival hit the frontend.
    Arrive,
    /// Passed the token bucket and entered the tenant queue.
    Admit,
    /// Rejected (rate-limited or queue overflow).
    Shed,
    /// Dequeued by the QoS scheduler and fanned out into sub-I/Os.
    Dispatch,
    /// A hedged duplicate of the straggler sub-I/O was issued.
    HedgeFire,
    /// The last sub-I/O settled and the client was woken.
    Complete,
}

impl RequestPhase {
    /// A short, stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RequestPhase::Arrive => "arrive",
            RequestPhase::Admit => "admit",
            RequestPhase::Shed => "shed",
            RequestPhase::Dispatch => "dispatch",
            RequestPhase::HedgeFire => "hedge_fire",
            RequestPhase::Complete => "complete",
        }
    }
}

/// One per-request trace event: `(time, request id, tenant, phase)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestEvent {
    /// Simulation time of the transition.
    pub at: SimTime,
    /// Frontend-assigned request id.
    pub request: u64,
    /// Tenant the request belongs to.
    pub tenant: u16,
    /// The lifecycle transition.
    pub phase: RequestPhase,
}

/// Bounded in-order capture of [`RequestEvent`]s (the request-level
/// sibling of the blktrace-style per-I/O stage records).
#[derive(Clone, Debug, Default)]
pub struct RequestLog {
    events: Vec<RequestEvent>,
    capacity: usize,
}

impl RequestLog {
    /// Creates a log keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RequestLog {
            events: Vec::with_capacity(capacity.min(1 << 16)),
            capacity,
        }
    }

    /// Records one event; silently dropped once the window is full.
    pub fn push(&mut self, event: RequestEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        }
    }

    /// The captured events, in record order.
    pub fn events(&self) -> &[RequestEvent] {
        &self.events
    }

    /// Events for one request, in record order.
    pub fn for_request(&self, request: u64) -> impl Iterator<Item = &RequestEvent> + '_ {
        self.events.iter().filter(move |e| e.request == request)
    }
}

/// A past-time schedule observed by a driver: the clock stood at
/// `now` when an event was requested for `requested` (< `now`). The
/// event is clamped to `now` and counted; a healthy model never
/// produces these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PastSchedule {
    /// The simulation clock when the offending schedule happened.
    pub now: SimTime,
    /// The (past) instant the event asked for.
    pub requested: SimTime,
}

type PastScheduleHook = Box<dyn Fn(PastSchedule) + Send + Sync>;

static PAST_SCHEDULE_HOOK: std::sync::Mutex<Option<PastScheduleHook>> = std::sync::Mutex::new(None);

/// Installs (or, with `None`, removes) the process-wide hook invoked on
/// every clamped past-time schedule. With no hook installed the event
/// is counted silently — drivers never write to stderr themselves, so
/// parallel shards cannot interleave garbage. Returns the previous
/// hook.
pub fn set_past_schedule_hook(hook: Option<PastScheduleHook>) -> Option<PastScheduleHook> {
    let mut slot = PAST_SCHEDULE_HOOK.lock().expect("hook lock");
    std::mem::replace(&mut *slot, hook)
}

/// Reports one clamped past-time schedule to the installed hook, if
/// any. Called by the drivers; the hot path never takes the lock
/// because schedules into the past do not happen in a healthy model.
pub fn note_past_schedule(now: SimTime, requested: SimTime) {
    if let Ok(slot) = PAST_SCHEDULE_HOOK.lock() {
        if let Some(hook) = slot.as_ref() {
            hook(PastSchedule { now, requested });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_sums_and_counts() {
        let mut acc = CauseAccumulator::new();
        acc.record(SimTime::ZERO, 1, Cause::Fabric, SimDuration::micros(2));
        acc.record(SimTime::ZERO, 2, Cause::Fabric, SimDuration::micros(3));
        acc.record(
            SimTime::ZERO,
            3,
            Cause::Housekeeping,
            SimDuration::micros(500),
        );
        assert_eq!(acc.total(Cause::Fabric), SimDuration::micros(5));
        assert_eq!(acc.count(Cause::Fabric), 2);
        assert_eq!(acc.total(Cause::CpuWork), SimDuration::ZERO);
        assert_eq!(acc.dominant(), Some(Cause::Housekeeping));
    }

    #[test]
    fn empty_accumulator_has_no_dominant() {
        assert_eq!(CauseAccumulator::new().dominant(), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Cause::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Cause::ALL.len());
    }

    #[test]
    fn null_sink_is_noop() {
        let mut sink = NullSink;
        sink.record(SimTime::ZERO, 0, Cause::Other, SimDuration::micros(1));
    }

    #[test]
    fn iter_lists_recorded_causes() {
        let mut acc = CauseAccumulator::new();
        acc.record(SimTime::ZERO, 0, Cause::CpuWork, SimDuration::micros(1));
        let items: Vec<_> = acc.iter().collect();
        assert_eq!(items, vec![(Cause::CpuWork, SimDuration::micros(1), 1)]);
    }

    #[test]
    fn indices_match_declaration_order() {
        assert_eq!(Cause::COUNT, Cause::ALL.len());
        for (i, cause) in Cause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i, "{cause} out of order");
        }
    }

    #[test]
    fn add_is_equivalent_to_individual_records() {
        let mut by_record = CauseAccumulator::new();
        by_record.record(SimTime::ZERO, 0, Cause::Fabric, SimDuration::micros(2));
        by_record.record(SimTime::ZERO, 1, Cause::Fabric, SimDuration::micros(3));
        let mut by_add = CauseAccumulator::new();
        by_add.add(Cause::Fabric, SimDuration::micros(5), 2);
        by_add.add(Cause::CpuWork, SimDuration::ZERO, 0); // no-op
        assert_eq!(
            by_record.iter().collect::<Vec<_>>(),
            by_add.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_sums_totals_and_counts() {
        let mut a = CauseAccumulator::new();
        let mut b = CauseAccumulator::new();
        a.record(SimTime::ZERO, 0, Cause::Fabric, SimDuration::micros(2));
        b.record(SimTime::ZERO, 1, Cause::Fabric, SimDuration::micros(3));
        b.record(SimTime::ZERO, 2, Cause::CpuWork, SimDuration::micros(1));
        a.merge(&b);
        assert_eq!(a.total(Cause::Fabric), SimDuration::micros(5));
        assert_eq!(a.count(Cause::Fabric), 2);
        assert_eq!(a.count(Cause::CpuWork), 1);
    }

    #[test]
    fn request_log_caps_and_filters() {
        let mut log = RequestLog::new(3);
        for (i, phase) in [
            RequestPhase::Arrive,
            RequestPhase::Admit,
            RequestPhase::Dispatch,
            RequestPhase::Complete,
        ]
        .into_iter()
        .enumerate()
        {
            log.push(RequestEvent {
                at: SimTime::from_nanos(i as u64 * 10),
                request: (i % 2) as u64,
                tenant: 0,
                phase,
            });
        }
        assert_eq!(log.events().len(), 3, "capacity bounds the window");
        assert_eq!(log.for_request(0).count(), 2);
        assert_eq!(log.events()[2].phase, RequestPhase::Dispatch);
        assert_eq!(RequestPhase::HedgeFire.label(), "hedge_fire");
    }

    #[test]
    fn budget_snapshot_matches_accumulator() {
        let mut acc = CauseAccumulator::new();
        acc.record(SimTime::ZERO, 0, Cause::Fabric, SimDuration::micros(2));
        acc.record(
            SimTime::ZERO,
            1,
            Cause::Housekeeping,
            SimDuration::micros(7),
        );
        let budget = acc.budget();
        assert_eq!(budget.rows().len(), 2);
        assert_eq!(budget.total(), SimDuration::micros(9));
        assert!(!budget.is_empty());
        assert!(CauseBudget::default().is_empty());
    }
}
