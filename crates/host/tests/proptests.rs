//! Property-based tests for the host/OS model.

use afa_host::{
    BackgroundConfig, CpuId, CpuSet, CpuTopology, HostModel, KernelConfig, SchedPolicy,
};
use afa_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn host(seed: u64, isolated: bool) -> HostModel {
    let config = if isolated {
        KernelConfig::isolated_pinned_irq(
            CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39)),
        )
    } else {
        KernelConfig::stock()
    };
    let mut h = HostModel::new(
        CpuTopology::xeon_e5_2690_v2_dual(),
        config,
        BackgroundConfig::centos7_desktop(),
        seed,
    );
    h.init_vectors((0..64u16).map(|d| CpuId(4 + d % 32)).collect(), seed);
    h
}

proptest! {
    /// Wake-ups never travel backwards: the task starts at or after
    /// it became runnable, and charged work ends after it starts.
    #[test]
    fn wake_and_charge_are_monotone(seed in 0u64..500,
                                    wakes in prop::collection::vec((0u16..32, 0u64..1_000_000, prop::bool::ANY), 1..300)) {
        let mut h = host(seed, false);
        let mut clock = SimTime::ZERO;
        for (cpu_off, gap_ns, rt) in wakes {
            clock += SimDuration::nanos(gap_ns);
            h.spawn_background(clock);
            let cpu = CpuId(4 + cpu_off % 32);
            let policy = if rt { SchedPolicy::chrt_fifo_99() } else { SchedPolicy::default_fair() };
            let (start, bd) = h.wake_io_task(cpu, clock, policy);
            prop_assert!(start >= clock, "start {start} < ready {clock}");
            prop_assert_eq!(start.saturating_since(clock), bd.total());
            let end = h.charge_cpu(cpu, start, SimDuration::micros(2));
            prop_assert!(end > start);
        }
    }

    /// RT wake-up delay is bounded by the non-preemptible cap plus
    /// fixed costs, no matter what the background does.
    #[test]
    fn rt_wake_delay_is_bounded(seed in 0u64..300, steps in 1usize..200) {
        let mut h = host(seed, false);
        let cap = SimDuration::micros(520); // np cap (500) + ctx + slack
        let mut clock = SimTime::ZERO;
        for i in 0..steps {
            clock += SimDuration::micros(137 + (i as u64 * 53) % 400);
            h.spawn_background(clock);
            let cpu = CpuId(4 + (i % 32) as u16);
            let (start, _) = h.wake_io_task(cpu, clock, SchedPolicy::chrt_fifo_99());
            // Another I/O task may hold the CPU (local queueing is not
            // np-bounded), so only assert when the delay source is bg.
            let delay = start.saturating_since(clock);
            prop_assert!(delay <= SimDuration::millis(30), "delay {delay}");
            let _ = h.charge_cpu(cpu, start, SimDuration::micros(1));
            let _ = cap;
        }
    }

    /// Isolation invariant: background never occupies isolated CPUs,
    /// for any seed and any arrival pattern.
    #[test]
    fn isolcpus_never_hosts_background(seed in 0u64..500, arrivals in 1usize..400) {
        let mut h = host(seed, true);
        let mut clock = SimTime::ZERO;
        for i in 0..arrivals {
            clock += SimDuration::micros(50 + (i as u64 * 97) % 500);
            h.spawn_background(clock);
        }
        for cpu in (4..20).chain(24..40) {
            prop_assert_eq!(h.stats().bg_per_cpu[cpu], 0);
        }
    }

    /// Pinned vectors always land on the designated CPU.
    #[test]
    fn pinned_irq_routing_is_exact(seed in 0u64..500, deliveries in prop::collection::vec((0usize..64, 0u64..60_000_000), 1..200)) {
        let mut h = host(seed, true);
        let mut last = SimTime::ZERO;
        for (device, t_us) in deliveries {
            let t = SimTime::ZERO + SimDuration::micros(t_us);
            let t = t.max(last);
            last = t;
            let out = h.deliver_irq(device, t);
            prop_assert!(!out.delivery.remote);
            prop_assert_eq!(out.delivery.vector_cpu, CpuId(4 + (device % 32) as u16));
            prop_assert!(out.handler_done > t);
            prop_assert_eq!(out.wake_ready, out.handler_done);
        }
    }

    /// The host is a pure function of (seed, call sequence).
    #[test]
    fn host_is_deterministic(seed in 0u64..200, n in 1usize..100) {
        let mut a = host(seed, false);
        let mut b = host(seed, false);
        let mut clock = SimTime::ZERO;
        for i in 0..n {
            clock += SimDuration::micros(200);
            a.spawn_background(clock);
            b.spawn_background(clock);
            let cpu = CpuId(4 + (i % 32) as u16);
            let ra = a.wake_io_task(cpu, clock, SchedPolicy::default_fair());
            let rb = b.wake_io_task(cpu, clock, SchedPolicy::default_fair());
            prop_assert_eq!(ra, rb);
            let da = a.deliver_irq(i % 64, clock);
            let db = b.deliver_irq(i % 64, clock);
            prop_assert_eq!(da, db);
        }
    }
}

proptest! {
    /// The IoAggressive prototype bounds CFS wake-ups like RT ones:
    /// no tick-granularity waits, only non-preemptible sections.
    #[test]
    fn prototype_wakes_are_np_bounded(seed in 0u64..200, steps in 1usize..150) {
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::prototype(),
            BackgroundConfig::centos7_desktop(),
            seed,
        );
        h.init_vectors((0..64u16).map(|d| CpuId(4 + d % 32)).collect(), seed);
        let mut clock = SimTime::ZERO;
        for i in 0..steps {
            clock += SimDuration::micros(211 + (i as u64 * 71) % 500);
            h.spawn_background(clock);
            let cpu = CpuId(4 + (i % 32) as u16);
            let (start, bd) = h.wake_io_task(cpu, clock, SchedPolicy::default_fair());
            // No CFS tick waits under the prototype.
            prop_assert_eq!(bd.cfs_preempt_wait, SimDuration::ZERO);
            // np sections still bound the delay (plus C-state/queueing).
            prop_assert!(bd.np_wait <= SimDuration::micros(501));
            let _ = h.charge_cpu(cpu, start, SimDuration::micros(2));
        }
    }

    /// The AffinityAware balancer routes like pinning: never remote.
    #[test]
    fn prototype_irqs_are_never_remote(seed in 0u64..200, n in 1usize..100) {
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::prototype(),
            BackgroundConfig::silent(),
            seed,
        );
        h.init_vectors((0..64u16).map(|d| CpuId(4 + d % 32)).collect(), seed);
        for i in 0..n {
            let t = SimTime::ZERO + SimDuration::micros(50 * i as u64);
            let out = h.deliver_irq(i % 64, t);
            prop_assert!(!out.delivery.remote);
        }
        prop_assert_eq!(h.stats().remote_irqs, 0);
    }
}
