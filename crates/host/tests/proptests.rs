//! Property-based tests for the host/OS model, on the first-party
//! [`afa_sim::check`] harness.

use afa_host::{
    BackgroundConfig, CpuId, CpuSet, CpuTopology, HostModel, KernelConfig, SchedPolicy,
};
use afa_sim::check::run_cases;
use afa_sim::{SimDuration, SimTime};

fn host(seed: u64, isolated: bool) -> HostModel {
    let config = if isolated {
        KernelConfig::isolated_pinned_irq(
            CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39)),
        )
    } else {
        KernelConfig::stock()
    };
    let mut h = HostModel::new(
        CpuTopology::xeon_e5_2690_v2_dual(),
        config,
        BackgroundConfig::centos7_desktop(),
        seed,
    );
    h.init_vectors((0..64u16).map(|d| CpuId(4 + d % 32)).collect(), seed);
    h
}

/// Wake-ups never travel backwards: the task starts at or after it
/// became runnable, and charged work ends after it starts.
#[test]
fn wake_and_charge_are_monotone() {
    run_cases("wake_and_charge_are_monotone", 64, |g| {
        let seed = g.u64_in(0, 500);
        let wakes = g.vec_of(1, 300, |g| {
            (g.u16_in(0, 32), g.u64_in(0, 1_000_000), g.bool())
        });
        let mut h = host(seed, false);
        let mut clock = SimTime::ZERO;
        for (cpu_off, gap_ns, rt) in wakes {
            clock += SimDuration::nanos(gap_ns);
            h.spawn_background(clock);
            let cpu = CpuId(4 + cpu_off % 32);
            let policy = if rt {
                SchedPolicy::chrt_fifo_99()
            } else {
                SchedPolicy::default_fair()
            };
            let (start, bd) = h.wake_io_task(cpu, clock, policy);
            assert!(start >= clock, "start {start} < ready {clock}");
            assert_eq!(start.saturating_since(clock), bd.total());
            let end = h.charge_cpu(cpu, start, SimDuration::micros(2));
            assert!(end > start);
        }
    });
}

/// RT wake-up delay is bounded by the non-preemptible cap plus fixed
/// costs, no matter what the background does.
#[test]
fn rt_wake_delay_is_bounded() {
    run_cases("rt_wake_delay_is_bounded", 64, |g| {
        let seed = g.u64_in(0, 300);
        let steps = g.usize_in(1, 200);
        let mut h = host(seed, false);
        let mut clock = SimTime::ZERO;
        for i in 0..steps {
            clock += SimDuration::micros(137 + (i as u64 * 53) % 400);
            h.spawn_background(clock);
            let cpu = CpuId(4 + (i % 32) as u16);
            let (start, _) = h.wake_io_task(cpu, clock, SchedPolicy::chrt_fifo_99());
            // Another I/O task may hold the CPU (local queueing is not
            // np-bounded), so only assert a coarse upper bound.
            let delay = start.saturating_since(clock);
            assert!(delay <= SimDuration::millis(30), "delay {delay}");
            let _ = h.charge_cpu(cpu, start, SimDuration::micros(1));
        }
    });
}

/// Isolation invariant: background never occupies isolated CPUs, for
/// any seed and any arrival pattern.
#[test]
fn isolcpus_never_hosts_background() {
    run_cases("isolcpus_never_hosts_background", 64, |g| {
        let seed = g.u64_in(0, 500);
        let arrivals = g.usize_in(1, 400);
        let mut h = host(seed, true);
        let mut clock = SimTime::ZERO;
        for i in 0..arrivals {
            clock += SimDuration::micros(50 + (i as u64 * 97) % 500);
            h.spawn_background(clock);
        }
        for cpu in (4..20).chain(24..40) {
            assert_eq!(h.stats().bg_per_cpu[cpu], 0);
        }
    });
}

/// Pinned vectors always land on the designated CPU.
#[test]
fn pinned_irq_routing_is_exact() {
    run_cases("pinned_irq_routing_is_exact", 64, |g| {
        let seed = g.u64_in(0, 500);
        let deliveries = g.vec_of(1, 200, |g| (g.usize_in(0, 64), g.u64_in(0, 60_000_000)));
        let mut h = host(seed, true);
        let mut last = SimTime::ZERO;
        for (device, t_us) in deliveries {
            let t = SimTime::ZERO + SimDuration::micros(t_us);
            let t = t.max(last);
            last = t;
            let out = h.deliver_irq(device, t);
            assert!(!out.delivery.remote);
            assert_eq!(out.delivery.vector_cpu, CpuId(4 + (device % 32) as u16));
            assert!(out.handler_done > t);
            assert_eq!(out.wake_ready, out.handler_done);
        }
    });
}

/// The host is a pure function of (seed, call sequence).
#[test]
fn host_is_deterministic() {
    run_cases("host_is_deterministic", 32, |g| {
        let seed = g.u64_in(0, 200);
        let n = g.usize_in(1, 100);
        let mut a = host(seed, false);
        let mut b = host(seed, false);
        let mut clock = SimTime::ZERO;
        for i in 0..n {
            clock += SimDuration::micros(200);
            a.spawn_background(clock);
            b.spawn_background(clock);
            let cpu = CpuId(4 + (i % 32) as u16);
            let ra = a.wake_io_task(cpu, clock, SchedPolicy::default_fair());
            let rb = b.wake_io_task(cpu, clock, SchedPolicy::default_fair());
            assert_eq!(ra, rb);
            let da = a.deliver_irq(i % 64, clock);
            let db = b.deliver_irq(i % 64, clock);
            assert_eq!(da, db);
        }
    });
}

/// The IoAggressive prototype bounds CFS wake-ups like RT ones: no
/// tick-granularity waits, only non-preemptible sections.
#[test]
fn prototype_wakes_are_np_bounded() {
    run_cases("prototype_wakes_are_np_bounded", 64, |g| {
        let seed = g.u64_in(0, 200);
        let steps = g.usize_in(1, 150);
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::prototype(),
            BackgroundConfig::centos7_desktop(),
            seed,
        );
        h.init_vectors((0..64u16).map(|d| CpuId(4 + d % 32)).collect(), seed);
        let mut clock = SimTime::ZERO;
        for i in 0..steps {
            clock += SimDuration::micros(211 + (i as u64 * 71) % 500);
            h.spawn_background(clock);
            let cpu = CpuId(4 + (i % 32) as u16);
            let (start, bd) = h.wake_io_task(cpu, clock, SchedPolicy::default_fair());
            // No CFS tick waits under the prototype.
            assert_eq!(bd.cfs_preempt_wait, SimDuration::ZERO);
            // np sections still bound the delay (plus C-state/queueing).
            assert!(bd.np_wait <= SimDuration::micros(501));
            let _ = h.charge_cpu(cpu, start, SimDuration::micros(2));
        }
    });
}

/// The AffinityAware balancer routes like pinning: never remote.
#[test]
fn prototype_irqs_are_never_remote() {
    run_cases("prototype_irqs_are_never_remote", 64, |g| {
        let seed = g.u64_in(0, 200);
        let n = g.usize_in(1, 100);
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::prototype(),
            BackgroundConfig::silent(),
            seed,
        );
        h.init_vectors((0..64u16).map(|d| CpuId(4 + d % 32)).collect(), seed);
        for i in 0..n {
            let t = SimTime::ZERO + SimDuration::micros(50 * i as u64);
            let out = h.deliver_irq(i % 64, t);
            assert!(!out.delivery.remote);
        }
        assert_eq!(h.stats().remote_irqs, 0);
    });
}
