//! Kernel configuration knobs.
//!
//! §IV of the paper tunes, in order: fio's scheduling class (`chrt`),
//! CPU isolation (`isolcpus= nohz_full= rcu_nocbs= processor.max_cstate=1
//! idle=poll` boot options), and IRQ affinity (procfs / `tuna`).
//! [`KernelConfig`] holds all of them.

use afa_sim::SimDuration;

use crate::cpu::CpuSet;

/// Idle-state policy of the cpuidle subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdlePolicy {
    /// Menu-governor-like: pick the deepest C-state whose target
    /// residency fits the predicted idle span, capped at `max_cstate`.
    CStates {
        /// Deepest state the governor may enter (1 = C1 only).
        max_cstate: u8,
    },
    /// `idle=poll`: never enter a C-state; wake-up is free.
    Poll,
}

/// How MSI-X vectors are placed on CPUs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IrqMode {
    /// Stock behaviour the paper observed: the balancer distributes
    /// vectors without regard for submitter affinity (§IV-D), and
    /// re-shuffles periodically.
    Balanced,
    /// Every device's vector pinned to its designated CPU (the paper's
    /// procfs/tuna fix).
    Pinned,
    /// The §V/§VI future-work prototype: a balancer that *considers
    /// affinity* — it places each device's vector on the CPU running
    /// that device's I/O worker automatically, with no manual procfs
    /// setup.
    AffinityAware,
}

/// CPU-scheduler behaviour profile.
///
/// [`SchedProfile::IoAggressive`] is the §V/§VI future-work prototype:
/// "CPU schedulers need to be revised to take into account the
/// priority of IO-bound jobs, CPU isolation, and CPU-SSD affinity"
/// (abstract). Under this profile, waking I/O-bound tasks preempt
/// CPU-bound tasks immediately (no `chrt` needed), and the placement
/// of background work avoids CPUs that recently ran I/O workers (no
/// `isolcpus` needed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedProfile {
    /// Stock CFS semantics.
    Stock,
    /// The prototype: I/O wake-ups behave like RT wake-ups, and
    /// background placement treats I/O-active CPUs as off limits.
    IoAggressive,
}

/// One C-state's exit latency and target residency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CStateSpec {
    /// Name (C1, C3, C6).
    pub name: &'static str,
    /// Time to resume execution after a wake-up.
    pub exit_latency: SimDuration,
    /// Governor only enters the state if it predicts at least this
    /// much idle time.
    pub target_residency: SimDuration,
}

/// The C-state table of the modeled Xeon (Ivy Bridge-EP class).
pub const CSTATE_TABLE: [CStateSpec; 3] = [
    CStateSpec {
        name: "C1",
        exit_latency: SimDuration::micros(2),
        target_residency: SimDuration::micros(4),
    },
    CStateSpec {
        name: "C3",
        exit_latency: SimDuration::micros(30),
        target_residency: SimDuration::micros(150),
    },
    CStateSpec {
        name: "C6",
        exit_latency: SimDuration::micros(90),
        target_residency: SimDuration::micros(500),
    },
];

/// Complete kernel configuration.
///
/// # Example
///
/// ```
/// use afa_host::{CpuSet, KernelConfig};
///
/// let fio_cpus = CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39));
/// let tuned = KernelConfig::isolated(fio_cpus);
/// assert!(tuned.isolcpus.contains(afa_host::CpuId(4)));
/// assert_eq!(tuned.tick_hz, 1000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    /// CPUs excluded from general task placement and load balancing.
    pub isolcpus: CpuSet,
    /// CPUs running the 1 Hz residual tick instead of `tick_hz`.
    pub nohz_full: CpuSet,
    /// CPUs whose RCU callbacks are offloaded (removes a class of
    /// kernel-thread noise from those CPUs).
    pub rcu_nocbs: CpuSet,
    /// Idle policy.
    pub idle: IdlePolicy,
    /// Periodic timer tick rate on ordinary CPUs.
    pub tick_hz: u32,
    /// IRQ vector placement mode.
    pub irq_mode: IrqMode,
    /// CPU-scheduler behaviour profile.
    pub sched_profile: SchedProfile,
}

impl KernelConfig {
    /// Stock CentOS 7 / 4.7.2 defaults: no isolation, deep C-states,
    /// 1 kHz tick, affinity-oblivious IRQ balancing.
    pub fn stock() -> Self {
        KernelConfig {
            isolcpus: CpuSet::EMPTY,
            nohz_full: CpuSet::EMPTY,
            rcu_nocbs: CpuSet::EMPTY,
            idle: IdlePolicy::CStates { max_cstate: 6 },
            tick_hz: 1_000,
            irq_mode: IrqMode::Balanced,
            sched_profile: SchedProfile::Stock,
        }
    }

    /// The §VI future-work prototype kernel: *no* manual tuning (no
    /// isolation boot options, no `chrt`, stock C-states), but an
    /// I/O-aggressive scheduler and an affinity-aware IRQ balancer.
    pub fn prototype() -> Self {
        KernelConfig {
            irq_mode: IrqMode::AffinityAware,
            sched_profile: SchedProfile::IoAggressive,
            ..Self::stock()
        }
    }

    /// §IV-C's boot options for a given I/O CPU set:
    /// `isolcpus= nohz_full= rcu_nocbs=` that set, plus
    /// `processor.max_cstate=1 idle=poll`.
    pub fn isolated(io_cpus: CpuSet) -> Self {
        KernelConfig {
            isolcpus: io_cpus,
            nohz_full: io_cpus,
            rcu_nocbs: io_cpus,
            idle: IdlePolicy::Poll,
            tick_hz: 1_000,
            irq_mode: IrqMode::Balanced,
            sched_profile: SchedProfile::Stock,
        }
    }

    /// [`KernelConfig::isolated`] plus pinned IRQ vectors (§IV-D).
    pub fn isolated_pinned_irq(io_cpus: CpuSet) -> Self {
        KernelConfig {
            irq_mode: IrqMode::Pinned,
            ..Self::isolated(io_cpus)
        }
    }

    /// Tick period on `cpu`-class CPUs: the nohz_full residual 1 Hz
    /// tick or the ordinary `tick_hz` tick.
    pub fn tick_period(&self, nohz: bool) -> SimDuration {
        if nohz {
            SimDuration::secs(1)
        } else {
            SimDuration::from_secs_f64(1.0 / self.tick_hz as f64)
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::stock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuId;

    #[test]
    fn stock_matches_paper_defaults() {
        let k = KernelConfig::stock();
        assert!(k.isolcpus.is_empty());
        assert_eq!(k.irq_mode, IrqMode::Balanced);
        assert_eq!(k.tick_hz, 1_000);
        assert_eq!(k.idle, IdlePolicy::CStates { max_cstate: 6 });
    }

    #[test]
    fn isolated_sets_all_three_cpusets_and_poll() {
        let io = CpuSet::from_range(4, 19);
        let k = KernelConfig::isolated(io);
        assert_eq!(k.isolcpus, io);
        assert_eq!(k.nohz_full, io);
        assert_eq!(k.rcu_nocbs, io);
        assert_eq!(k.idle, IdlePolicy::Poll);
        assert_eq!(k.irq_mode, IrqMode::Balanced);
    }

    #[test]
    fn pinned_variant_only_changes_irq_mode() {
        let io = CpuSet::from_range(4, 19);
        let a = KernelConfig::isolated(io);
        let b = KernelConfig::isolated_pinned_irq(io);
        assert_eq!(b.irq_mode, IrqMode::Pinned);
        assert_eq!(
            KernelConfig {
                irq_mode: IrqMode::Balanced,
                ..b
            },
            a
        );
    }

    #[test]
    fn tick_periods() {
        let k = KernelConfig::stock();
        assert_eq!(k.tick_period(false), SimDuration::millis(1));
        assert_eq!(k.tick_period(true), SimDuration::secs(1));
    }

    #[test]
    fn cstate_table_is_monotone() {
        for w in CSTATE_TABLE.windows(2) {
            assert!(w[0].exit_latency < w[1].exit_latency);
            assert!(w[0].target_residency < w[1].target_residency);
        }
        let _ = CpuId(0); // silence unused import in some cfgs
    }
}
