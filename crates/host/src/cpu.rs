//! CPU topology: sockets, cores, hyper-threads.

use std::fmt;

/// A logical CPU index.
///
/// The paper's numbering is used: on a 2-socket × 10-core × 2-HT
/// machine, cpus 0–9 are socket 0's first threads, 10–19 socket 1's
/// first threads, and 20–39 the respective hyper-thread siblings
/// (cpu *n* pairs with cpu *n* + 20).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub u16);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu({})", self.0)
    }
}

/// A set of logical CPUs (bitmask; supports up to 64 logical CPUs,
/// enough for the paper's 40).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CpuSet(u64);

impl CpuSet {
    /// The empty set.
    pub const EMPTY: CpuSet = CpuSet(0);

    /// Builds a set from an iterator of CPU ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is ≥ 64.
    pub fn from_cpus<I: IntoIterator<Item = CpuId>>(cpus: I) -> Self {
        let mut s = CpuSet(0);
        for c in cpus {
            s.insert(c);
        }
        s
    }

    /// Builds a set from an inclusive range, like the kernel's
    /// `isolcpus=4-19` syntax.
    pub fn from_range(lo: u16, hi: u16) -> Self {
        Self::from_cpus((lo..=hi).map(CpuId))
    }

    /// Adds a CPU.
    ///
    /// # Panics
    ///
    /// Panics if the id is ≥ 64.
    pub fn insert(&mut self, cpu: CpuId) {
        assert!(cpu.0 < 64, "CpuSet supports ids 0..64");
        self.0 |= 1 << cpu.0;
    }

    /// Set-union.
    pub fn union(self, other: CpuSet) -> CpuSet {
        CpuSet(self.0 | other.0)
    }

    /// Membership test.
    pub fn contains(&self, cpu: CpuId) -> bool {
        cpu.0 < 64 && self.0 & (1 << cpu.0) != 0
    }

    /// Number of CPUs in the set.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = CpuId> + '_ {
        (0..64u16).map(CpuId).filter(move |c| self.contains(*c))
    }
}

/// Physical CPU layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CpuTopology {
    /// CPU packages.
    pub sockets: u16,
    /// Physical cores per socket.
    pub cores_per_socket: u16,
    /// Hardware threads per physical core.
    pub threads_per_core: u16,
}

impl CpuTopology {
    /// The paper's host: two Intel Xeon E5-2690 v2, each 10 physical /
    /// 20 logical cores (§III-A).
    pub fn xeon_e5_2690_v2_dual() -> Self {
        CpuTopology {
            sockets: 2,
            cores_per_socket: 10,
            threads_per_core: 2,
        }
    }

    /// Total logical CPUs.
    pub fn logical_cpus(&self) -> u16 {
        self.sockets * self.cores_per_socket * self.threads_per_core
    }

    /// Total physical cores.
    pub fn physical_cores(&self) -> u16 {
        self.sockets * self.cores_per_socket
    }

    /// Physical core index (0-based across sockets) of a logical CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn physical_core_of(&self, cpu: CpuId) -> u16 {
        assert!(cpu.0 < self.logical_cpus(), "cpu out of range");
        cpu.0 % self.physical_cores()
    }

    /// Socket of a logical CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn socket_of(&self, cpu: CpuId) -> u16 {
        self.physical_core_of(cpu) / self.cores_per_socket
    }

    /// The hyper-thread sibling of a logical CPU (for 2-way SMT).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range or SMT is not 2-way.
    pub fn sibling_of(&self, cpu: CpuId) -> CpuId {
        assert_eq!(self.threads_per_core, 2, "sibling_of requires 2-way SMT");
        assert!(cpu.0 < self.logical_cpus(), "cpu out of range");
        let half = self.physical_cores();
        if cpu.0 < half {
            CpuId(cpu.0 + half)
        } else {
            CpuId(cpu.0 - half)
        }
    }

    /// Whether two logical CPUs share a physical core.
    pub fn same_core(&self, a: CpuId, b: CpuId) -> bool {
        self.physical_core_of(a) == self.physical_core_of(b)
    }

    /// Whether two logical CPUs share a socket.
    pub fn same_socket(&self, a: CpuId, b: CpuId) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }

    /// All logical CPUs.
    pub fn all_cpus(&self) -> CpuSet {
        CpuSet::from_range(0, self.logical_cpus() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> CpuTopology {
        CpuTopology::xeon_e5_2690_v2_dual()
    }

    #[test]
    fn paper_host_has_40_logical_cpus() {
        let t = topo();
        assert_eq!(t.logical_cpus(), 40);
        assert_eq!(t.physical_cores(), 20);
    }

    #[test]
    fn sibling_pairs_match_paper_numbering() {
        let t = topo();
        assert_eq!(t.sibling_of(CpuId(4)), CpuId(24));
        assert_eq!(t.sibling_of(CpuId(24)), CpuId(4));
        assert_eq!(t.sibling_of(CpuId(0)), CpuId(20));
        assert_eq!(t.sibling_of(CpuId(39)), CpuId(19));
        for n in 0..40 {
            let c = CpuId(n);
            assert_eq!(t.sibling_of(t.sibling_of(c)), c);
            assert!(t.same_core(c, t.sibling_of(c)));
        }
    }

    #[test]
    fn sockets_split_at_core_10() {
        let t = topo();
        assert_eq!(t.socket_of(CpuId(0)), 0);
        assert_eq!(t.socket_of(CpuId(9)), 0);
        assert_eq!(t.socket_of(CpuId(10)), 1);
        assert_eq!(t.socket_of(CpuId(19)), 1);
        // HT siblings share the socket.
        assert_eq!(t.socket_of(CpuId(29)), 0);
        assert_eq!(t.socket_of(CpuId(30)), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cpu_panics() {
        let _ = topo().physical_core_of(CpuId(40));
    }

    #[test]
    fn cpuset_range_matches_kernel_syntax() {
        // isolcpus=4-19,24-39 from §IV-C.
        let iso = CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39));
        assert_eq!(iso.len(), 32);
        assert!(iso.contains(CpuId(4)));
        assert!(iso.contains(CpuId(39)));
        assert!(!iso.contains(CpuId(3)));
        assert!(!iso.contains(CpuId(20)));
    }

    #[test]
    fn cpuset_iter_ascending() {
        let s = CpuSet::from_cpus([CpuId(5), CpuId(1), CpuId(30)]);
        let v: Vec<u16> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![1, 5, 30]);
        assert!(!s.is_empty());
        assert!(CpuSet::EMPTY.is_empty());
    }
}
