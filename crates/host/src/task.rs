//! Scheduling policies for I/O worker tasks.

/// The scheduling class of an I/O worker thread.
///
/// The paper's first tuning step (§IV-B) promotes fio from the default
/// CFS class to `SCHED_FIFO` priority 99 via `chrt`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// `SCHED_OTHER` under CFS with the given nice value. Wake-up
    /// preemption of a running task happens at timer-tick granularity
    /// and is subject to wake-up-granularity heuristics.
    Fair {
        /// Nice value (−20 … 19); the default workload runs at 0.
        nice: i8,
    },
    /// `SCHED_FIFO` with the given real-time priority (1–99). Wakes
    /// preempt CFS tasks immediately; only non-preemptible kernel
    /// sections delay them.
    Fifo {
        /// RT priority; the paper uses 99.
        priority: u8,
    },
}

impl SchedPolicy {
    /// The stock policy fio starts with.
    pub fn default_fair() -> Self {
        SchedPolicy::Fair { nice: 0 }
    }

    /// `chrt -f 99` — the paper's §IV-B setting.
    pub fn chrt_fifo_99() -> Self {
        SchedPolicy::Fifo { priority: 99 }
    }

    /// Whether the policy is a real-time class.
    pub fn is_realtime(&self) -> bool {
        matches!(self, SchedPolicy::Fifo { .. })
    }
}

impl Default for SchedPolicy {
    fn default() -> Self {
        Self::default_fair()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(SchedPolicy::default_fair(), SchedPolicy::Fair { nice: 0 });
        assert_eq!(
            SchedPolicy::chrt_fifo_99(),
            SchedPolicy::Fifo { priority: 99 }
        );
        assert_eq!(SchedPolicy::default(), SchedPolicy::default_fair());
    }

    #[test]
    fn realtime_classification() {
        assert!(!SchedPolicy::default_fair().is_realtime());
        assert!(SchedPolicy::chrt_fifo_99().is_realtime());
        assert!(SchedPolicy::Fifo { priority: 1 }.is_realtime());
    }
}
