//! The host model: per-CPU scheduling, IRQ handling, idle states.
//!
//! [`HostModel`] answers the three questions the I/O path asks:
//!
//! 1. *An interrupt for device D fires at time t — when has its
//!    handler finished, and on which CPU?* ([`HostModel::deliver_irq`])
//! 2. *Task on CPU c becomes runnable at time t — when does it
//!    actually run?* ([`HostModel::wake_io_task`])
//! 3. *The task executes for w of CPU time — when is it done?*
//!    ([`HostModel::charge_cpu`])
//!
//! plus the background-workload generator that keeps CPUs realistically
//! dirty. All CPU state is interval-based and synchronized lazily, so
//! the host contributes no events of its own beyond background
//! arrivals.

use afa_sim::{SimDuration, SimRng, SimTime};

use crate::background::{BackgroundConfig, BgBurst};
use crate::config::{IdlePolicy, KernelConfig, SchedProfile, CSTATE_TABLE};
use crate::cpu::{CpuId, CpuTopology};
use crate::irq::{IrqDelivery, VectorTable};
use crate::task::SchedPolicy;

/// Fixed cost constants of the scheduler/interrupt paths.
///
/// Exposed so ablation experiments can display them; values are
/// calibrated in `DESIGN.md` §4.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedCosts {
    /// Full context switch (preempting a running task).
    pub ctx_switch: SimDuration,
    /// Picking up the CPU right after another I/O task yields.
    pub local_queue_ctx: SimDuration,
    /// Scheduler wake-up path (enqueue, select, dispatch).
    pub wake_path: SimDuration,
    /// Hardirq entry (vector dispatch, register save).
    pub irq_entry: SimDuration,
    /// NVMe completion handler body.
    pub irq_handler: SimDuration,
    /// Timer-tick interruption of a running task.
    pub tick_cost: SimDuration,
    /// Reschedule IPI to a CPU on the same socket.
    pub ipi_same_socket: SimDuration,
    /// Reschedule IPI across sockets.
    pub ipi_cross_socket: SimDuration,
    /// Extra wake-up cost when the waker ran on a remote CPU.
    pub remote_wake: SimDuration,
    /// Throughput factor when both hyper-threads of a core are busy.
    pub ht_slowdown: f64,
    /// Extra handler cost range when the vector is cache-cold
    /// (balanced IRQ placement), min.
    pub pollution_min: SimDuration,
    /// See [`SchedCosts::pollution_min`]; max.
    pub pollution_max: SimDuration,
}

impl Default for SchedCosts {
    fn default() -> Self {
        SchedCosts {
            ctx_switch: SimDuration::nanos(2_000),
            local_queue_ctx: SimDuration::nanos(700),
            wake_path: SimDuration::nanos(800),
            irq_entry: SimDuration::nanos(600),
            irq_handler: SimDuration::nanos(1_100),
            tick_cost: SimDuration::nanos(1_200),
            ipi_same_socket: SimDuration::nanos(1_200),
            ipi_cross_socket: SimDuration::nanos(2_200),
            remote_wake: SimDuration::nanos(1_000),
            ht_slowdown: 1.45,
            pollution_min: SimDuration::nanos(300),
            pollution_max: SimDuration::nanos(2_500),
        }
    }
}

/// Where a wake-up's latency went (cause attribution for the
/// LTTng-style analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WakeBreakdown {
    /// Waiting for a CFS preemption opportunity (tick granularity +
    /// wake-up-granularity heuristics).
    pub cfs_preempt_wait: SimDuration,
    /// Waiting for a non-preemptible kernel section to end.
    pub np_wait: SimDuration,
    /// Waiting behind another I/O task on the same logical CPU.
    pub local_queue_wait: SimDuration,
    /// C-state exit latency.
    pub cstate_exit: SimDuration,
    /// Waiting for RCU-callback softirq work (absent with
    /// `rcu_nocbs`).
    pub softirq_wait: SimDuration,
    /// Fixed context-switch / wake-path costs.
    pub fixed_costs: SimDuration,
}

impl WakeBreakdown {
    /// Total wake-to-run delay.
    pub fn total(&self) -> SimDuration {
        self.cfs_preempt_wait
            + self.np_wait
            + self.local_queue_wait
            + self.cstate_exit
            + self.softirq_wait
            + self.fixed_costs
    }
}

/// Result of delivering one completion interrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrqOutcome {
    /// Routing decision (vector CPU, remote?, polluted?).
    pub delivery: IrqDelivery,
    /// When the handler finished executing.
    pub handler_done: SimTime,
    /// When the woken task's own CPU learns about the wake (includes
    /// the IPI for remote completions).
    pub wake_ready: SimTime,
    /// Time the interrupt waited for an irq-off section.
    pub irqoff_wait: SimDuration,
}

/// Host-wide counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Background bursts spawned.
    pub bg_bursts: u64,
    /// Background bursts per CPU.
    pub bg_per_cpu: Vec<u64>,
    /// Background bursts per daemon class (see
    /// [`BackgroundConfig::classes`]).
    pub bg_per_class: Vec<u64>,
    /// Wake-ups that found a background task on the CPU.
    pub wakes_preempting_bg: u64,
    /// Total wake-ups of I/O tasks.
    pub wakes: u64,
    /// Interrupts delivered to a CPU other than the designated one.
    pub remote_irqs: u64,
    /// Interrupts delivered in total.
    pub irqs: u64,
    /// Total CPU time charged to I/O tasks, nanoseconds (polling vs.
    /// interrupt CPU-cost accounting).
    pub io_cpu_busy_ns: u64,
    /// Wake-ups delayed by RCU softirq work.
    pub rcu_softirq_hits: u64,
}

impl HostStats {
    /// Accumulates another counter snapshot into this one. Sharded
    /// runs split the counters across per-shard host replicas (wake
    /// and CPU-charge counters accrue at the CPU-owning shard, IRQ
    /// routing and background placement at the hub); summing the
    /// replicas reproduces the single-world totals.
    pub fn absorb(&mut self, other: &HostStats) {
        self.bg_bursts += other.bg_bursts;
        for (a, b) in self.bg_per_cpu.iter_mut().zip(&other.bg_per_cpu) {
            *a += b;
        }
        for (a, b) in self.bg_per_class.iter_mut().zip(&other.bg_per_class) {
            *a += b;
        }
        self.wakes_preempting_bg += other.wakes_preempting_bg;
        self.wakes += other.wakes;
        self.remote_irqs += other.remote_irqs;
        self.irqs += other.irqs;
        self.io_cpu_busy_ns += other.io_cpu_busy_ns;
        self.rcu_softirq_hits += other.rcu_softirq_hits;
    }
}

/// Per-CPU lazy state.
#[derive(Clone, Debug)]
struct CpuState {
    bg: Option<BgBurst>,
    io_busy_until: SimTime,
    /// Hardirq handlers on one CPU serialize (hardirqs don't nest).
    irq_busy_until: SimTime,
    last_busy_end: SimTime,
    /// EMA of recent idle durations (µs) for the idle governor.
    ema_idle_us: f64,
    /// Per-CPU scheduler-noise stream (splitmix64 state). Keeping the
    /// draws CPU-local — instead of one shared stream — is what lets a
    /// sharded run reproduce the sequential draw sequence: each CPU's
    /// draws depend only on how often *that CPU* was touched.
    draw_state: u64,
}

impl CpuState {
    fn new(seed: u64, cpu: usize) -> Self {
        let mut s = seed ^ 0x5C00_0000_0000_0000 ^ (cpu as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        afa_sim::rng::splitmix64(&mut s);
        CpuState {
            bg: None,
            io_busy_until: SimTime::ZERO,
            irq_busy_until: SimTime::ZERO,
            last_busy_end: SimTime::ZERO,
            ema_idle_us: 1_000.0,
            draw_state: s,
        }
    }
}

/// The hub's placement view of one CPU: the slice of per-CPU state
/// the background-placement logic is allowed to read. Deliberately
/// *not* the live [`CpuState`] — the hub learns about I/O business
/// only through [`HostModel::note_io_busy`] reports (one cross-shard
/// lookahead stale) and about bursts through its own
/// [`HostModel::mirror_background`] installs, so placement decisions
/// are identical under every partition plan, including plans that
/// fuse the hub with the CPUs' owners.
#[derive(Clone, Debug, Default)]
struct BgView {
    bg: Option<BgBurst>,
    io_busy_until: SimTime,
}

/// A hub-side background-placement decision, handed to the CPU-owning
/// shard for installation (see [`HostModel::decide_background`]).
#[derive(Clone, Debug)]
pub struct BgPlacement {
    /// The CPU the burst lands on.
    pub cpu: CpuId,
    /// Daemon class index (stats bucket).
    pub class: usize,
    /// Burst length (used when stacking onto an active burst).
    pub len: SimDuration,
    /// The pre-generated burst (used when the CPU is free of one).
    pub burst: BgBurst,
}

/// The complete host: topology + kernel config + scheduler state +
/// IRQ vectors + background workload.
#[derive(Clone)]
pub struct HostModel {
    topo: CpuTopology,
    config: KernelConfig,
    bg_config: BackgroundConfig,
    costs: SchedCosts,
    cpus: Vec<CpuState>,
    /// Hub-owned placement view, one slot per CPU (see [`BgView`]).
    bg_view: Vec<BgView>,
    /// Relative likelihood of each CPU attracting background work.
    /// A random ~20 % of CPUs are "hot" (persistent daemons such as
    /// llvmpipe park threads there), which is what spreads the
    /// per-device worst case under the default configuration.
    bg_weight: Vec<f64>,
    vectors: Option<VectorTable>,
    bg_rng: SimRng,
    stats: HostStats,
}

impl HostModel {
    /// Creates a host with the given topology, kernel configuration
    /// and background workload; `seed` derives all random streams.
    pub fn new(
        topo: CpuTopology,
        config: KernelConfig,
        bg_config: BackgroundConfig,
        seed: u64,
    ) -> Self {
        let n = topo.logical_cpus() as usize;
        let mut bg_rng = SimRng::from_seed_and_stream(seed, 0xB6);
        let bg_weight = (0..n)
            .map(|_| if bg_rng.chance(0.2) { 4.0 } else { 1.0 })
            .collect();
        HostModel {
            topo,
            config,
            bg_config,
            costs: SchedCosts::default(),
            cpus: (0..n).map(|c| CpuState::new(seed, c)).collect(),
            bg_view: vec![BgView::default(); n],
            bg_weight,
            vectors: None,
            bg_rng,
            stats: HostStats {
                bg_per_cpu: vec![0; n],
                bg_per_class: vec![0; crate::background::DAEMON_CLASSES],
                ..HostStats::default()
            },
        }
    }

    /// Installs the MSI-X vector table: `designated[d]` is the CPU
    /// running device *d*'s I/O worker.
    pub fn init_vectors(&mut self, designated: Vec<CpuId>, seed: u64) {
        let all: Vec<CpuId> = self.topo.all_cpus().iter().collect();
        self.vectors = Some(VectorTable::new(
            self.config.irq_mode,
            designated,
            all,
            SimRng::from_seed_and_stream(seed, 0x19),
        ));
    }

    /// The CPU topology.
    pub fn topology(&self) -> &CpuTopology {
        &self.topo
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The cost constants.
    pub fn costs(&self) -> &SchedCosts {
        &self.costs
    }

    /// Overrides the cost constants (ablations).
    pub fn set_costs(&mut self, costs: SchedCosts) {
        self.costs = costs;
    }

    /// Host-wide counters.
    pub fn stats(&self) -> &HostStats {
        &self.stats
    }

    /// The vector table, if installed.
    pub fn vectors(&self) -> Option<&VectorTable> {
        self.vectors.as_ref()
    }

    // ------------------------------------------------------------------
    // Background workload
    // ------------------------------------------------------------------

    /// Samples the next background arrival after `now`.
    pub fn next_background_arrival(&mut self, now: SimTime) -> SimTime {
        now + self.bg_config.sample_interarrival(&mut self.bg_rng)
    }

    /// Spawns one background burst at `now`: decides placement and
    /// installs the burst in one step. Equivalent to
    /// [`decide_background`](Self::decide_background) followed by
    /// [`install_background`](Self::install_background) — sharded runs
    /// split the two across the hub and the CPU-owning shard.
    pub fn spawn_background(&mut self, now: SimTime) {
        if let Some(placement) = self.decide_background(now) {
            self.install_background(placement, now);
        }
    }

    /// Picks where the next background burst lands and pre-generates
    /// it, using Linux-like placement: pick an idle CPU if one exists
    /// — and a CPU whose I/O task is sleeping *looks* idle, which is
    /// exactly the paper's §IV-C complaint — otherwise any allowed
    /// CPU. `isolcpus` CPUs are never candidates; the IoAggressive
    /// prototype also treats any CPU with recent I/O activity as off
    /// limits — automatic isolation without the boot option (falling
    /// back to all allowed CPUs if that empties the set).
    ///
    /// Reads the *live* per-CPU state, so it is only sound where one
    /// replica owns every CPU (single-world drivers; see
    /// [`decide_background_remote`](Self::decide_background_remote)
    /// for the sharded hub). Returns `None` when no CPU is allowed.
    pub fn decide_background(&mut self, start: SimTime) -> Option<BgPlacement> {
        self.decide_background_with(start, false)
    }

    /// The sharded-hub variant of
    /// [`decide_background`](Self::decide_background): the idle test
    /// reads only the hub-owned placement view — installs mirrored via
    /// [`mirror_background`](Self::mirror_background), I/O charges
    /// reported via [`note_io_busy`](Self::note_io_busy) — so the
    /// decision never touches state owned by other logical processes
    /// and is byte-identical under every partition plan. The view lags
    /// true CPU state by at most the cross-shard lookahead.
    pub fn decide_background_remote(&mut self, start: SimTime) -> Option<BgPlacement> {
        self.decide_background_with(start, true)
    }

    fn decide_background_with(&mut self, start: SimTime, remote: bool) -> Option<BgPlacement> {
        let allowed: Vec<CpuId> = self
            .topo
            .all_cpus()
            .iter()
            .filter(|c| !self.config.isolcpus.contains(*c))
            .collect();
        if allowed.is_empty() {
            return None;
        }
        for &c in &allowed {
            if remote {
                self.sync_view(c, start);
            } else {
                self.sync(c, start);
            }
        }
        // (has a burst?, busy with I/O until) as the placement logic
        // is allowed to see it: live state locally, the view remotely.
        let seen = |this: &HostModel, c: CpuId| -> (bool, SimTime) {
            if remote {
                let v = &this.bg_view[c.0 as usize];
                (v.bg.is_some(), v.io_busy_until)
            } else {
                let s = &this.cpus[c.0 as usize];
                (s.bg.is_some(), s.io_busy_until)
            }
        };
        let allowed: Vec<CpuId> = if self.config.sched_profile == SchedProfile::IoAggressive {
            let quiet: Vec<CpuId> = allowed
                .iter()
                .copied()
                .filter(|&c| seen(self, c).1 + SimDuration::millis(5) <= start)
                .collect();
            if quiet.is_empty() {
                allowed
            } else {
                quiet
            }
        } else {
            allowed
        };
        let idle: Vec<CpuId> = allowed
            .iter()
            .copied()
            .filter(|&c| {
                let (has_bg, busy_until) = seen(self, c);
                !has_bg && busy_until <= start
            })
            .collect();
        let candidates = if idle.is_empty() { &allowed } else { &idle };
        let cpu = self.weighted_pick(candidates);
        let (class, len) = self.bg_config.sample_burst(&mut self.bg_rng);
        let burst = BgBurst::generate(&self.bg_config, start, len, &mut self.bg_rng);
        self.stats.bg_bursts += 1;
        self.stats.bg_per_cpu[cpu.0 as usize] += 1;
        self.stats.bg_per_class[class] += 1;
        Some(BgPlacement {
            cpu,
            class,
            len,
            burst,
        })
    }

    /// Installs a hub-side placement decision on the chosen CPU: if a
    /// burst is already active there, the new arrival stacks onto the
    /// runqueue backlog; otherwise the pre-generated burst takes the
    /// CPU. Runs on the shard that owns `placement.cpu`.
    pub fn install_background(&mut self, placement: BgPlacement, now: SimTime) {
        self.sync(placement.cpu, now);
        let state = &mut self.cpus[placement.cpu.0 as usize];
        match &mut state.bg {
            Some(burst) if burst.active_at(now) => burst.stack(placement.len),
            _ => state.bg = Some(placement.burst),
        }
    }

    /// Mirrors a placement decision into the hub-owned view so the
    /// next [`decide_background_remote`](Self::decide_background_remote)
    /// sees the burst; the CPU's owner performs the authoritative
    /// [`install_background`](Self::install_background) separately.
    pub fn mirror_background(&mut self, placement: &BgPlacement, now: SimTime) {
        self.sync_view(placement.cpu, now);
        let view = &mut self.bg_view[placement.cpu.0 as usize];
        match &mut view.bg {
            Some(burst) if burst.active_at(now) => burst.stack(placement.len),
            _ => view.bg = Some(placement.burst.clone()),
        }
    }

    /// Records in the hub-owned placement view that `cpu` ran I/O work
    /// through `until`. Worker shards report their charges to the hub
    /// so its placement view keeps seeing I/O CPUs as busy while they
    /// run; the report arrives one cross-shard lookahead after the
    /// charge, so the hub's view is never more than that much stale.
    /// Touches only the view — never the live [`CpuState`] — so the
    /// report cannot perturb the owner's scheduler even when a fused
    /// plan co-locates the hub with the CPU's owner.
    pub fn note_io_busy(&mut self, cpu: CpuId, until: SimTime) {
        let view = &mut self.bg_view[cpu.0 as usize];
        view.io_busy_until = view.io_busy_until.max(until);
    }

    /// Weighted random choice among candidate CPUs (hot CPUs attract
    /// proportionally more daemon activity).
    fn weighted_pick(&mut self, candidates: &[CpuId]) -> CpuId {
        debug_assert!(!candidates.is_empty());
        let total: f64 = candidates
            .iter()
            .map(|c| self.bg_weight[c.0 as usize])
            .sum();
        let mut r = self.bg_rng.uniform_f64(0.0, total);
        for &c in candidates {
            r -= self.bg_weight[c.0 as usize];
            if r <= 0.0 {
                return c;
            }
        }
        *candidates.last().expect("non-empty")
    }

    /// Retires a finished burst from the hub-owned placement view.
    fn sync_view(&mut self, cpu: CpuId, now: SimTime) {
        let view = &mut self.bg_view[cpu.0 as usize];
        if let Some(bg) = &view.bg {
            if bg.end() <= now {
                view.bg = None;
            }
        }
    }

    /// Lazily retires finished background bursts and updates idle
    /// bookkeeping.
    fn sync(&mut self, cpu: CpuId, now: SimTime) {
        let state = &mut self.cpus[cpu.0 as usize];
        if let Some(bg) = &state.bg {
            if bg.end() <= now {
                state.last_busy_end = state.last_busy_end.max(bg.end());
                state.bg = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Interrupt delivery
    // ------------------------------------------------------------------

    /// Delivers device `device`'s completion interrupt raised at
    /// `now`.
    ///
    /// Equivalent to [`route_irq`](Self::route_irq) followed by
    /// [`deliver_irq_routed`](Self::deliver_irq_routed) — sharded runs
    /// split the two across the hub (which owns the vector table) and
    /// the shard owning the vector CPU.
    ///
    /// # Panics
    ///
    /// Panics if [`HostModel::init_vectors`] was not called.
    pub fn deliver_irq(&mut self, device: usize, now: SimTime) -> IrqOutcome {
        let (delivery, designated) = self.route_irq(device, now);
        self.deliver_irq_routed(delivery, designated, now)
    }

    /// Routes one completion interrupt through the vector table
    /// (including any pending balancer reshuffle), returning the
    /// delivery decision and the device's designated CPU. Mutates only
    /// the vector table and the IRQ counters.
    ///
    /// # Panics
    ///
    /// Panics if [`HostModel::init_vectors`] was not called.
    pub fn route_irq(&mut self, device: usize, now: SimTime) -> (IrqDelivery, CpuId) {
        let vectors = self.vectors.as_mut().expect("init_vectors not called");
        let delivery = vectors.route(device, now);
        let designated = vectors.designated(device);
        self.stats.irqs += 1;
        if delivery.remote {
            self.stats.remote_irqs += 1;
        }
        (delivery, designated)
    }

    /// Executes a routed interrupt's handler on the vector CPU,
    /// touching only that CPU's state (no vector-table access).
    pub fn deliver_irq_routed(
        &mut self,
        delivery: IrqDelivery,
        designated: CpuId,
        now: SimTime,
    ) -> IrqOutcome {
        let vcpu = delivery.vector_cpu;
        self.sync(vcpu, now);

        // Hardirqs preempt tasks but wait for irq-off sections, and
        // handlers on the same CPU serialize (hardirqs don't nest) —
        // under balanced placement several devices' vectors can pile
        // onto one CPU, which is part of each device's placement-
        // dependent penalty.
        let enabled_at = match &self.cpus[vcpu.0 as usize].bg {
            Some(bg) if bg.active_at(now) => bg.irqs_enabled_at(now),
            _ => now,
        };
        let enabled_at = enabled_at.max(self.cpus[vcpu.0 as usize].irq_busy_until);
        let irqoff_wait = enabled_at.saturating_since(now);

        let mut handler_cost = self.costs.irq_handler;
        if self.sibling_busy(vcpu, enabled_at) {
            handler_cost = scale(handler_cost, self.costs.ht_slowdown);
        }
        if delivery.polluted || delivery.remote {
            // Cold instruction/data cache on a foreign CPU. The
            // penalty depends on where the vector landed relative to
            // the submitter (cache topology, uncore distance), so each
            // (vector, designated) pair has its own characteristic
            // cost — this is what makes the per-SSD distributions
            // diverge under balanced placement (§IV-D).
            let min = self.costs.pollution_min.as_nanos();
            let max = self.costs.pollution_max.as_nanos();
            let extra = min + self.cpu_draw(vcpu) % (max - min + 1);
            let mut pair = (vcpu.0 as u64) << 16 | designated.0 as u64;
            let pair_factor = 0.5 + 2.0 * (crate::pair_hash(&mut pair) % 1_000) as f64 / 1_000.0;
            handler_cost += scale(SimDuration::nanos(extra), pair_factor);
        }
        let handler_done = enabled_at + self.costs.irq_entry + handler_cost;
        self.cpus[vcpu.0 as usize].irq_busy_until = handler_done;

        // Remote completion: the designated CPU learns via an IPI.
        let wake_ready = if delivery.remote {
            let ipi = if self.topo.same_socket(vcpu, designated) {
                self.costs.ipi_same_socket
            } else {
                self.costs.ipi_cross_socket
            };
            handler_done + ipi + self.costs.remote_wake
        } else {
            handler_done
        };

        IrqOutcome {
            delivery,
            handler_done,
            wake_ready,
            irqoff_wait,
        }
    }

    /// Pure twin of [`deliver_irq_routed`](Self::deliver_irq_routed):
    /// computes the identical [`IrqOutcome`] without touching any CPU
    /// state. A burst that has ended by `now` is treated as retired
    /// (what the lazy [`sync`](Self::sync) would do), and the
    /// pollution draw peeks at the vector CPU's noise stream via a
    /// local copy — the real delivery later consumes the same value.
    /// Only exact while nothing mutates the vector CPU's state between
    /// preview and delivery; the fusion gate's vector-privacy checks
    /// guarantee that.
    pub fn preview_irq_delivery(
        &self,
        delivery: IrqDelivery,
        designated: CpuId,
        now: SimTime,
    ) -> IrqOutcome {
        let vcpu = delivery.vector_cpu;
        let state = &self.cpus[vcpu.0 as usize];
        let bg = state.bg.as_ref().filter(|b| b.end() > now);
        let enabled_at = match bg {
            Some(bg) if bg.active_at(now) => bg.irqs_enabled_at(now),
            _ => now,
        };
        let enabled_at = enabled_at.max(state.irq_busy_until);
        let irqoff_wait = enabled_at.saturating_since(now);

        let mut handler_cost = self.costs.irq_handler;
        if self.sibling_busy(vcpu, enabled_at) {
            handler_cost = scale(handler_cost, self.costs.ht_slowdown);
        }
        if delivery.polluted || delivery.remote {
            let min = self.costs.pollution_min.as_nanos();
            let max = self.costs.pollution_max.as_nanos();
            let mut draw = state.draw_state;
            let extra = min + afa_sim::rng::splitmix64(&mut draw) % (max - min + 1);
            let mut pair = (vcpu.0 as u64) << 16 | designated.0 as u64;
            let pair_factor = 0.5 + 2.0 * (crate::pair_hash(&mut pair) % 1_000) as f64 / 1_000.0;
            handler_cost += scale(SimDuration::nanos(extra), pair_factor);
        }
        let handler_done = enabled_at + self.costs.irq_entry + handler_cost;

        let wake_ready = if delivery.remote {
            let ipi = if self.topo.same_socket(vcpu, designated) {
                self.costs.ipi_same_socket
            } else {
                self.costs.ipi_cross_socket
            };
            handler_done + ipi + self.costs.remote_wake
        } else {
            handler_done
        };

        IrqOutcome {
            delivery,
            handler_done,
            wake_ready,
            irqoff_wait,
        }
    }

    /// Whether `cpu` carries no background burst that is still alive
    /// at `now` (an already-ended burst counts as clear — the lazy
    /// sync would retire it). Pure; part of the fusion gate.
    pub fn bg_clear(&self, cpu: CpuId, now: SimTime) -> bool {
        self.cpus[cpu.0 as usize]
            .bg
            .as_ref()
            .is_none_or(|b| b.end() <= now)
    }

    // ------------------------------------------------------------------
    // Task wake-up and execution
    // ------------------------------------------------------------------

    /// Draws the next value of `cpu`'s private noise stream.
    fn cpu_draw(&mut self, cpu: CpuId) -> u64 {
        afa_sim::rng::splitmix64(&mut self.cpus[cpu.0 as usize].draw_state)
    }

    /// Draws a uniform value in `[0, 1)` from `cpu`'s noise stream.
    fn cpu_draw_f64(&mut self, cpu: CpuId) -> f64 {
        (self.cpu_draw(cpu) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn sibling_busy(&self, cpu: CpuId, t: SimTime) -> bool {
        let sib = self.topo.sibling_of(cpu);
        let s = &self.cpus[sib.0 as usize];
        s.io_busy_until > t || s.bg.as_ref().is_some_and(|b| b.active_at(t))
    }

    /// Next timer tick on `cpu` strictly after `t`.
    fn next_tick(&self, cpu: CpuId, t: SimTime) -> SimTime {
        let nohz = self.config.nohz_full.contains(cpu);
        let period = self.config.tick_period(nohz).as_nanos();
        // Per-CPU phase: ticks are skewed across CPUs.
        let phase = (cpu.0 as u64 * 137_000) % period;
        let tn = t.as_nanos();
        let k = if tn < phase {
            0
        } else {
            (tn - phase) / period + 1
        };
        SimTime::from_nanos(phase + k * period)
    }

    /// Number of tick boundaries on `cpu` in `[start, end)`.
    fn ticks_in(&self, cpu: CpuId, start: SimTime, end: SimTime) -> u64 {
        if end <= start {
            return 0;
        }
        let nohz = self.config.nohz_full.contains(cpu);
        let period = self.config.tick_period(nohz).as_nanos();
        let phase = (cpu.0 as u64 * 137_000) % period;
        let count = |t: u64| -> u64 {
            if t < phase {
                0
            } else {
                (t - phase) / period + 1
            }
        };
        count(end.as_nanos().saturating_sub(1)) - count(start.as_nanos().saturating_sub(1))
    }

    /// RCU-callback softirq occupancy: on CPUs whose RCU callbacks are
    /// *not* offloaded (`rcu_nocbs`), the rcu softirq runs a short
    /// window every few milliseconds; a wake-up landing inside one
    /// waits it out. Windows are derived arithmetically from the CPU
    /// id (deterministic, no events).
    fn rcu_window_end(&self, cpu: CpuId, t: SimTime) -> Option<SimTime> {
        if self.config.rcu_nocbs.contains(cpu) {
            return None;
        }
        const PERIOD_NS: u64 = 4_096_000; // ~4 ms
        let phase = (cpu.0 as u64).wrapping_mul(311_017) % PERIOD_NS;
        let tn = t.as_nanos();
        let slot = tn.saturating_sub(phase) / PERIOD_NS;
        let start = phase + slot * PERIOD_NS;
        // Window length varies deterministically per (cpu, slot):
        // 8–28 µs of callback processing.
        let mut h = (cpu.0 as u64) << 32 | (slot & 0xFFFF_FFFF);
        let dur = 8_000 + afa_sim::rng::splitmix64(&mut h) % 20_000;
        let end = start + dur;
        (tn >= start && tn < end).then(|| SimTime::from_nanos(end))
    }

    /// C-state exit latency for a wake-up on `cpu` at `t`, per the
    /// idle policy and the governor's idle-duration prediction.
    fn cstate_exit(&mut self, cpu: CpuId, t: SimTime) -> SimDuration {
        match self.config.idle {
            IdlePolicy::Poll => SimDuration::ZERO,
            IdlePolicy::CStates { max_cstate } => {
                let state = &mut self.cpus[cpu.0 as usize];
                let idle_us = t.saturating_since(state.last_busy_end).as_micros_f64();
                // Menu-like: predict from the EMA of past idles, then
                // fold in this observation.
                let predicted = state.ema_idle_us;
                state.ema_idle_us = 0.7 * state.ema_idle_us + 0.3 * idle_us;
                let deepest_allowed = match max_cstate {
                    0 => return SimDuration::ZERO,
                    1 => 1,
                    2..=3 => 2,
                    _ => 3,
                };
                let mut exit = SimDuration::ZERO;
                for (i, spec) in CSTATE_TABLE.iter().enumerate() {
                    if i + 1 > deepest_allowed {
                        break;
                    }
                    if predicted >= spec.target_residency.as_micros_f64() {
                        exit = spec.exit_latency;
                    }
                }
                exit
            }
        }
    }

    /// An I/O task pinned to `cpu` becomes runnable at `ready`;
    /// returns when it starts executing, with the delay breakdown.
    pub fn wake_io_task(
        &mut self,
        cpu: CpuId,
        ready: SimTime,
        policy: SchedPolicy,
    ) -> (SimTime, WakeBreakdown) {
        self.sync(cpu, ready);
        self.stats.wakes += 1;
        let mut breakdown = WakeBreakdown::default();

        // RCU softirq work on this CPU runs ahead of the wake-up.
        let ready = match self.rcu_window_end(cpu, ready) {
            Some(end) => {
                breakdown.softirq_wait = end.saturating_since(ready);
                self.stats.rcu_softirq_hits += 1;
                end
            }
            None => ready,
        };
        let state = &self.cpus[cpu.0 as usize];

        let bg_active = state.bg.as_ref().is_some_and(|b| b.active_at(ready));
        let run_start = if bg_active {
            self.stats.wakes_preempting_bg += 1;
            // Drawn up front (for either policy) so the CPU's noise
            // stream advances identically regardless of the RT
            // override below.
            let cfs_draw = self.cpu_draw_f64(cpu);
            let bg = self.cpus[cpu.0 as usize].bg.as_ref().expect("bg checked");
            let bg_end = bg.end();
            let preemptible = bg.preemptible_at(ready);
            // The IoAggressive prototype gives waking I/O tasks
            // RT-like preemption without chrt (§V "more aggressive
            // policy").
            let policy = if self.config.sched_profile == SchedProfile::IoAggressive {
                SchedPolicy::Fifo { priority: 98 }
            } else {
                policy
            };
            match policy {
                SchedPolicy::Fifo { .. } => {
                    // RT preempts as soon as preemption is re-enabled.
                    let at = preemptible.min(bg_end).max(ready);
                    breakdown.np_wait = at.saturating_since(ready);
                    breakdown.fixed_costs = self.costs.ctx_switch;
                    at + self.costs.ctx_switch
                }
                SchedPolicy::Fair { .. } => {
                    // CFS: preemption happens at a timer tick, and the
                    // wake-up-granularity heuristics can let the
                    // current task hold on for a few more ticks.
                    let first_tick = self.next_tick(cpu, ready);
                    let extra_ticks = {
                        let r = cfs_draw;
                        if r < 0.55 {
                            0
                        } else if r < 0.80 {
                            1
                        } else if r < 0.92 {
                            2
                        } else {
                            3
                        }
                    };
                    let nohz = self.config.nohz_full.contains(cpu);
                    let period = self.config.tick_period(nohz);
                    let tick_preempt = first_tick + period * extra_ticks;
                    // The burst may simply finish first; and a
                    // non-preemptible section can push past the tick.
                    let candidate = tick_preempt.min(bg_end).max(ready);
                    let at = bg.preemptible_at(candidate).min(bg_end).max(candidate);
                    breakdown.np_wait = at.saturating_since(candidate);
                    breakdown.cfs_preempt_wait = candidate.saturating_since(ready);
                    breakdown.fixed_costs = self.costs.ctx_switch;
                    at + self.costs.ctx_switch
                }
            }
        } else if state.io_busy_until > ready {
            // Another I/O task (the second fio thread of this logical
            // CPU in the paper's geometry) is mid-burst.
            let at = state.io_busy_until;
            breakdown.local_queue_wait = at.saturating_since(ready);
            breakdown.fixed_costs = self.costs.local_queue_ctx;
            at + self.costs.local_queue_ctx
        } else {
            // CPU idle: pay the C-state exit plus the wake path.
            let exit = self.cstate_exit(cpu, ready);
            breakdown.cstate_exit = exit;
            breakdown.fixed_costs = self.costs.wake_path;
            ready + exit + self.costs.wake_path
        };

        (run_start, breakdown)
    }

    /// Charges `work` of CPU time on `cpu` starting at `start`
    /// (returned by [`HostModel::wake_io_task`]); returns when the
    /// work completes, after hyper-thread and tick inflation.
    pub fn charge_cpu(&mut self, cpu: CpuId, start: SimTime, work: SimDuration) -> SimTime {
        let mut effective = work;
        if self.sibling_busy(cpu, start) {
            effective = scale(effective, self.costs.ht_slowdown);
        }
        let ticks = self.ticks_in(cpu, start, start + effective);
        effective += self.costs.tick_cost * ticks;
        let end = start + effective;
        self.stats.io_cpu_busy_ns += effective.as_nanos();

        let state = &mut self.cpus[cpu.0 as usize];
        state.io_busy_until = state.io_busy_until.max(end);
        state.last_busy_end = state.last_busy_end.max(end);
        if let Some(bg) = &mut state.bg {
            if bg.active_at(start) || bg.active_at(end) {
                bg.push_back(effective);
            }
        }
        end
    }

    /// Adopts the per-CPU state of `cpus` from another replica of the
    /// same host. Used when merging shard replicas after a sharded
    /// run: the merged host starts from the hub's clone (which owns
    /// the vector table and background RNG) and adopts each worker's
    /// owned CPUs.
    ///
    /// # Panics
    ///
    /// Panics if the replicas have different CPU counts.
    pub fn adopt_cpu_states(&mut self, other: &HostModel, cpus: &[CpuId]) {
        assert_eq!(self.cpus.len(), other.cpus.len(), "replica shape mismatch");
        for &c in cpus {
            self.cpus[c.0 as usize] = other.cpus[c.0 as usize].clone();
        }
    }

    /// Accumulates another replica's counters (see
    /// [`HostStats::absorb`]).
    pub fn absorb_stats(&mut self, other: &HostModel) {
        self.stats.absorb(&other.stats);
    }

    /// Whether a background burst currently occupies `cpu` (test and
    /// experiment introspection).
    pub fn bg_active(&mut self, cpu: CpuId, now: SimTime) -> bool {
        self.sync(cpu, now);
        self.cpus[cpu.0 as usize]
            .bg
            .as_ref()
            .is_some_and(|b| b.active_at(now))
    }
}

impl std::fmt::Debug for HostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostModel")
            .field("cpus", &self.cpus.len())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

fn scale(d: SimDuration, factor: f64) -> SimDuration {
    SimDuration::from_micros_f64(d.as_micros_f64() * factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSet;

    fn t_us(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(n)
    }

    fn quiet_host(config: KernelConfig) -> HostModel {
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            config,
            BackgroundConfig::silent(),
            7,
        );
        let designated: Vec<CpuId> = (0..64u16).map(|d| CpuId(4 + d % 32)).collect();
        h.init_vectors(designated, 7);
        h
    }

    #[test]
    fn idle_wake_costs_cstate_plus_wake_path() {
        let mut h = quiet_host(KernelConfig::stock());
        // Long idle → deep C-state expected after EMA settles.
        let mut t = t_us(0);
        for _ in 0..20 {
            let (start, _) = h.wake_io_task(CpuId(4), t, SchedPolicy::default_fair());
            h.charge_cpu(CpuId(4), start, SimDuration::micros(2));
            t += SimDuration::millis(10);
        }
        let (start, bd) = h.wake_io_task(CpuId(4), t, SchedPolicy::default_fair());
        assert!(bd.cstate_exit >= SimDuration::micros(30), "{bd:?}");
        assert!(start > t);
    }

    #[test]
    fn poll_idle_wakes_instantly() {
        let io = CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39));
        let mut h = quiet_host(KernelConfig::isolated(io));
        let (start, bd) = h.wake_io_task(CpuId(4), t_us(100), SchedPolicy::chrt_fifo_99());
        assert_eq!(bd.cstate_exit, SimDuration::ZERO);
        assert_eq!(start, t_us(100) + h.costs().wake_path);
    }

    #[test]
    fn short_idle_uses_shallow_cstate() {
        let mut h = quiet_host(KernelConfig::stock());
        let cpu = CpuId(5);
        // Train the EMA with ~25 µs idles (the QD1 cycle).
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            let (start, _) = h.wake_io_task(cpu, t, SchedPolicy::default_fair());
            let end = h.charge_cpu(cpu, start, SimDuration::micros(2));
            t = end + SimDuration::micros(25);
        }
        let (_, bd) = h.wake_io_task(cpu, t, SchedPolicy::default_fair());
        assert!(
            bd.cstate_exit <= SimDuration::micros(2),
            "expected C1-class exit, got {:?}",
            bd.cstate_exit
        );
    }

    #[test]
    fn max_cstate_1_caps_exit_latency() {
        let cfg = KernelConfig {
            idle: IdlePolicy::CStates { max_cstate: 1 },
            ..KernelConfig::stock()
        };
        let mut h = quiet_host(cfg);
        let (_, bd) = h.wake_io_task(CpuId(4), t_us(100_000), SchedPolicy::default_fair());
        assert!(bd.cstate_exit <= SimDuration::micros(2), "{bd:?}");
    }

    #[test]
    fn local_queueing_behind_other_io_task() {
        let mut h = quiet_host(KernelConfig::stock());
        let cpu = CpuId(4);
        let (s1, _) = h.wake_io_task(cpu, t_us(10), SchedPolicy::default_fair());
        let end1 = h.charge_cpu(cpu, s1, SimDuration::micros(5));
        // Second task wakes while the first still runs.
        let (s2, bd) = h.wake_io_task(cpu, s1, SchedPolicy::default_fair());
        assert!(s2 >= end1);
        assert!(bd.local_queue_wait > SimDuration::ZERO);
    }

    #[test]
    fn rt_preempts_background_fast() {
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::stock(),
            BackgroundConfig::centos7_desktop(),
            11,
        );
        h.init_vectors(vec![CpuId(4)], 11);
        // Force a burst onto cpu(4): spawn until it lands there.
        let mut spawned_on_4 = false;
        let mut t = SimTime::ZERO;
        for _ in 0..5_000 {
            h.spawn_background(t);
            if h.bg_active(CpuId(4), t) {
                spawned_on_4 = true;
                break;
            }
            t += SimDuration::micros(50);
        }
        assert!(spawned_on_4, "no burst landed on cpu(4)");
        let (start, bd) = h.wake_io_task(CpuId(4), t, SchedPolicy::chrt_fifo_99());
        let delay = start.saturating_since(t);
        // RT delay is bounded by the np cap + context switch.
        assert!(
            delay <= SimDuration::micros(503),
            "RT wake delayed {delay} ({bd:?})"
        );
    }

    #[test]
    fn cfs_waits_for_tick_granularity() {
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::stock(),
            BackgroundConfig::centos7_desktop(),
            13,
        );
        h.init_vectors(vec![CpuId(4)], 13);
        // Find a long burst on cpu(4).
        let mut t = SimTime::ZERO;
        let mut max_delay = SimDuration::ZERO;
        let mut hits = 0;
        for _ in 0..20_000 {
            h.spawn_background(t);
            if h.bg_active(CpuId(4), t) {
                let (start, _) = h.wake_io_task(CpuId(4), t, SchedPolicy::default_fair());
                max_delay = max_delay.max(start.saturating_since(t));
                hits += 1;
            }
            t += SimDuration::micros(200);
        }
        assert!(hits > 5, "no busy wake-ups sampled");
        assert!(
            max_delay >= SimDuration::micros(300),
            "CFS delays too small: {max_delay}"
        );
        assert!(
            max_delay <= SimDuration::millis(6),
            "CFS delays unbounded: {max_delay}"
        );
    }

    #[test]
    fn isolcpus_excludes_io_cpus_from_placement() {
        let io = CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39));
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::isolated(io),
            BackgroundConfig::centos7_desktop(),
            17,
        );
        h.init_vectors(vec![CpuId(4)], 17);
        let mut t = SimTime::ZERO;
        for _ in 0..10_000 {
            h.spawn_background(t);
            t += SimDuration::micros(100);
        }
        for cpu in io.iter() {
            assert_eq!(
                h.stats().bg_per_cpu[cpu.0 as usize],
                0,
                "background landed on isolated {cpu}"
            );
        }
        assert!(h.stats().bg_bursts > 1_000);
    }

    #[test]
    fn default_placement_lands_on_io_cpus() {
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::stock(),
            BackgroundConfig::centos7_desktop(),
            19,
        );
        h.init_vectors(vec![CpuId(4)], 19);
        let mut t = SimTime::ZERO;
        for _ in 0..5_000 {
            h.spawn_background(t);
            t += SimDuration::micros(500);
        }
        let on_io: u64 = (4..20).chain(24..40).map(|c| h.stats().bg_per_cpu[c]).sum();
        let total = h.stats().bg_bursts;
        assert!(
            on_io as f64 > total as f64 * 0.5,
            "only {on_io}/{total} bursts on the fio CPUs"
        );
    }

    #[test]
    fn pinned_irqs_are_never_remote() {
        let io = CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39));
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::isolated_pinned_irq(io),
            BackgroundConfig::silent(),
            23,
        );
        let designated: Vec<CpuId> = (0..64u16).map(|d| CpuId(4 + d % 32)).collect();
        h.init_vectors(designated.clone(), 23);
        for (d, &cpu) in designated.iter().enumerate() {
            let out = h.deliver_irq(d, t_us(d as u64 * 10));
            assert_eq!(out.delivery.vector_cpu, cpu);
            assert!(!out.delivery.remote);
            assert_eq!(out.wake_ready, out.handler_done);
        }
        assert_eq!(h.stats().remote_irqs, 0);
    }

    #[test]
    fn balanced_irqs_pay_remote_costs() {
        let mut h = quiet_host(KernelConfig::stock());
        let mut local_done = Vec::new();
        let mut remote_gap = Vec::new();
        for d in 0..64 {
            let now = t_us(d as u64 * 100);
            let out = h.deliver_irq(d, now);
            if out.delivery.remote {
                remote_gap.push(out.wake_ready.saturating_since(out.handler_done));
            } else {
                local_done.push(out);
            }
        }
        assert!(!remote_gap.is_empty());
        for gap in remote_gap {
            assert!(gap >= SimDuration::micros(2), "IPI too cheap: {gap}");
        }
    }

    #[test]
    fn preview_irq_delivery_matches_real_delivery() {
        // Balanced placement: remote + polluted deliveries draw from
        // the vector CPU's noise stream, the hardest case for the pure
        // preview to reproduce.
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::stock(),
            BackgroundConfig::centos7_desktop(),
            31,
        );
        let designated: Vec<CpuId> = (0..64u16).map(|d| CpuId(4 + d % 32)).collect();
        h.init_vectors(designated, 31);
        let mut t = SimTime::ZERO;
        for d in 0..64usize {
            h.spawn_background(t);
            let (delivery, designated) = h.route_irq(d, t);
            let previewed = h.preview_irq_delivery(delivery, designated, t);
            let real = h.deliver_irq_routed(delivery, designated, t);
            assert_eq!(previewed, real, "device {d} at {t}");
            t += SimDuration::micros(173);
        }
    }

    #[test]
    fn bg_clear_tracks_burst_lifetime() {
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::stock(),
            BackgroundConfig::centos7_desktop(),
            37,
        );
        h.init_vectors(vec![CpuId(4)], 37);
        assert!(h.bg_clear(CpuId(4), SimTime::ZERO), "fresh CPU is clear");
        let mut t = SimTime::ZERO;
        let mut landed = None;
        for _ in 0..5_000 {
            h.spawn_background(t);
            if h.bg_active(CpuId(4), t) {
                landed = Some(t);
                break;
            }
            t += SimDuration::micros(50);
        }
        let t = landed.expect("a burst landed on cpu(4)");
        assert!(!h.bg_clear(CpuId(4), t), "active burst is not clear");
        assert!(
            h.bg_clear(CpuId(4), t + SimDuration::secs(60)),
            "ended burst counts as clear even before the lazy sync"
        );
    }

    #[test]
    fn ht_contention_inflates_work() {
        let mut h = quiet_host(KernelConfig::stock());
        let cpu = CpuId(4);
        let sib = CpuId(24);
        // Keep the sibling busy.
        let (s, _) = h.wake_io_task(sib, t_us(10), SchedPolicy::default_fair());
        h.charge_cpu(sib, s, SimDuration::micros(100));
        let (s2, _) = h.wake_io_task(cpu, t_us(20), SchedPolicy::default_fair());
        let end = h.charge_cpu(cpu, s2, SimDuration::micros(10));
        let effective = end.saturating_since(s2);
        assert!(
            effective >= SimDuration::from_micros_f64(14.0),
            "HT slowdown missing: {effective}"
        );
    }

    #[test]
    fn tick_interruptions_add_cost() {
        let mut h = quiet_host(KernelConfig::stock());
        let cpu = CpuId(4);
        // A 3 ms run on a 1 kHz CPU crosses ~3 ticks.
        let (s, _) = h.wake_io_task(cpu, t_us(10), SchedPolicy::default_fair());
        let end = h.charge_cpu(cpu, s, SimDuration::millis(3));
        let inflated = end.saturating_since(s) - SimDuration::millis(3);
        assert!(
            inflated >= SimDuration::micros(3),
            "expected ≥3 tick costs, got {inflated}"
        );
    }

    #[test]
    fn nohz_full_removes_tick_noise() {
        let io = CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39));
        let mut h = quiet_host(KernelConfig::isolated(io));
        let cpu = CpuId(4);
        let (s, _) = h.wake_io_task(cpu, t_us(10), SchedPolicy::chrt_fifo_99());
        let end = h.charge_cpu(cpu, s, SimDuration::millis(3));
        let inflated = end.saturating_since(s) - SimDuration::millis(3);
        assert!(
            inflated <= SimDuration::micros(2),
            "nohz CPU still ticking: {inflated}"
        );
    }

    #[test]
    fn rcu_windows_absent_with_nocbs_present_without() {
        let io = CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39));
        let mut offloaded = quiet_host(KernelConfig::isolated(io));
        let cfg_no_offload = KernelConfig {
            rcu_nocbs: CpuSet::EMPTY,
            ..KernelConfig::isolated(io)
        };
        let mut plain = quiet_host(cfg_no_offload);
        // Scan a window of wake-ups; only the non-offloaded host may
        // record softirq hits.
        for us in 0..20_000u64 {
            let t = t_us(us);
            let _ = offloaded.wake_io_task(CpuId(4), t, SchedPolicy::chrt_fifo_99());
            let _ = plain.wake_io_task(CpuId(4), t, SchedPolicy::chrt_fifo_99());
        }
        assert_eq!(offloaded.stats().rcu_softirq_hits, 0);
        assert!(
            plain.stats().rcu_softirq_hits > 0,
            "expected softirq hits without rcu_nocbs"
        );
    }

    #[test]
    fn cpu_busy_accounting_accumulates() {
        let mut h = quiet_host(KernelConfig::stock());
        let before = h.stats().io_cpu_busy_ns;
        let (s, _) = h.wake_io_task(CpuId(4), t_us(10), SchedPolicy::default_fair());
        h.charge_cpu(CpuId(4), s, SimDuration::micros(5));
        assert!(h.stats().io_cpu_busy_ns >= before + 5_000);
    }

    #[test]
    fn wake_breakdown_sums_to_total() {
        let mut h = HostModel::new(
            CpuTopology::xeon_e5_2690_v2_dual(),
            KernelConfig::stock(),
            BackgroundConfig::centos7_desktop(),
            29,
        );
        h.init_vectors(vec![CpuId(4)], 29);
        let mut t = SimTime::ZERO;
        for i in 0..2_000u64 {
            h.spawn_background(t);
            let cpu = CpuId(4 + (i % 32) as u16);
            let (start, bd) = h.wake_io_task(cpu, t, SchedPolicy::default_fair());
            let total = start.saturating_since(t);
            let sum = bd.total();
            assert!(
                total <= sum + SimDuration::nanos(1) && sum <= total + SimDuration::nanos(1),
                "breakdown {sum} vs actual {total}"
            );
            h.charge_cpu(cpu, start, SimDuration::micros(2));
            t += SimDuration::micros(137);
        }
    }
}
