//! MSI-X vector placement: the IRQ balancer vs. explicit pinning.
//!
//! In the paper's setup the kernel creates one IRQ handler per device
//! per logical CPU — 2,560 vectors for 64 SSDs × 40 CPUs (§III-C) —
//! and the stock balancer places each device's *effective* vector
//! without regard for which CPU runs the submitting fio thread
//! (§IV-D, "irq(0,4) is executed on cpu(30)"). [`VectorTable`] models
//! that placement and the §IV-D fix of pinning every vector to its
//! designated CPU.

use afa_sim::{SimDuration, SimRng, SimTime};

use crate::config::IrqMode;
use crate::cpu::CpuId;

/// Result of routing one completion interrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrqDelivery {
    /// CPU the handler executed on.
    pub vector_cpu: CpuId,
    /// Whether the handler ran away from the designated CPU.
    pub remote: bool,
    /// Whether the vector moved recently (cold handler cache).
    pub polluted: bool,
}

/// The per-device effective-vector table.
#[derive(Clone, Debug)]
pub struct VectorTable {
    mode: IrqMode,
    designated: Vec<CpuId>,
    effective: Vec<CpuId>,
    all_cpus: Vec<CpuId>,
    rng: SimRng,
    rebalance_period: SimDuration,
    next_rebalance: SimTime,
    /// Per-device instant until which the handler cache is cold.
    polluted_until: Vec<SimTime>,
    rebalances: u64,
}

/// How long a migrated vector's handler path stays cache-cold.
const POLLUTION_WINDOW: SimDuration = SimDuration::millis(50);

impl VectorTable {
    /// Creates a table for `designated.len()` devices.
    ///
    /// In [`IrqMode::Balanced`] the initial effective CPUs are random
    /// (as the stock balancer leaves them) and reshuffle every
    /// `rebalance_period`; in [`IrqMode::Pinned`] the effective CPU is
    /// always the designated one.
    pub fn new(
        mode: IrqMode,
        designated: Vec<CpuId>,
        all_cpus: Vec<CpuId>,
        mut rng: SimRng,
    ) -> Self {
        assert!(!all_cpus.is_empty(), "need at least one CPU");
        let effective = match mode {
            IrqMode::Pinned | IrqMode::AffinityAware => designated.clone(),
            IrqMode::Balanced => designated
                .iter()
                .map(|_| *rng.choose(&all_cpus).expect("cpus non-empty"))
                .collect(),
        };
        let n = designated.len();
        VectorTable {
            mode,
            designated,
            effective,
            all_cpus,
            rng,
            rebalance_period: SimDuration::secs(10),
            next_rebalance: SimTime::ZERO + SimDuration::secs(10),
            polluted_until: vec![SimTime::ZERO; n],
            rebalances: 0,
        }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.designated.len()
    }

    /// Total vectors the kernel allocated (devices × CPUs) — 2,560 in
    /// the paper's setup.
    pub fn vector_count(&self) -> usize {
        self.designated.len() * self.all_cpus.len()
    }

    /// The designated (affinity-correct) CPU of a device.
    pub fn designated(&self, device: usize) -> CpuId {
        self.designated[device]
    }

    /// All designated CPUs, one per device (may repeat).
    pub fn designated_cpus(&self) -> &[CpuId] {
        &self.designated
    }

    /// Times the balancer has reshuffled.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    fn maybe_rebalance(&mut self, now: SimTime) {
        if self.mode != IrqMode::Balanced {
            return;
        }
        while now >= self.next_rebalance {
            for (d, eff) in self.effective.iter_mut().enumerate() {
                let new = *self.rng.choose(&self.all_cpus).expect("cpus non-empty");
                if new != *eff {
                    self.polluted_until[d] = self.next_rebalance + POLLUTION_WINDOW;
                }
                *eff = new;
            }
            self.next_rebalance += self.rebalance_period;
            self.rebalances += 1;
        }
    }

    /// Routes one interrupt for `device` at `now`.
    pub fn route(&mut self, device: usize, now: SimTime) -> IrqDelivery {
        self.maybe_rebalance(now);
        let vector_cpu = self.effective[device];
        IrqDelivery {
            vector_cpu,
            remote: vector_cpu != self.designated[device],
            polluted: now < self.polluted_until[device],
        }
    }

    /// Pure preview of [`route`](Self::route): what routing `device` at
    /// `now` *would* return, or `None` when a pending rebalance makes
    /// the answer depend on RNG draws that have not happened yet. The
    /// fusion fast path declines to fuse in that case rather than
    /// guess.
    pub fn preview_route(&self, device: usize, now: SimTime) -> Option<IrqDelivery> {
        if self.mode == IrqMode::Balanced && now >= self.next_rebalance {
            return None;
        }
        let vector_cpu = self.effective[device];
        Some(IrqDelivery {
            vector_cpu,
            remote: vector_cpu != self.designated[device],
            polluted: now < self.polluted_until[device],
        })
    }

    /// The current effective (routed-to) CPU of a device, without
    /// advancing the balancer.
    pub fn effective(&self, device: usize) -> CpuId {
        self.effective[device]
    }

    /// The next instant the balancer may reshuffle vectors. Routes
    /// strictly before it are deterministic from current state.
    pub fn next_rebalance(&self) -> SimTime {
        self.next_rebalance
    }

    /// Whether the stock balancer owns this table (vectors can move
    /// and routing can consume RNG draws). Pinned and affinity-aware
    /// tables never reshuffle, so [`next_rebalance`](Self::next_rebalance)
    /// is meaningless for them.
    pub fn is_balanced(&self) -> bool {
        self.mode == IrqMode::Balanced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpus(n: u16) -> Vec<CpuId> {
        (0..n).map(CpuId).collect()
    }

    #[test]
    fn pinned_always_routes_to_designated() {
        let designated: Vec<CpuId> = (0..64u16).map(|d| CpuId(4 + d % 32)).collect();
        let mut table = VectorTable::new(
            IrqMode::Pinned,
            designated.clone(),
            cpus(40),
            SimRng::from_seed(1),
        );
        for (d, &cpu) in designated.iter().enumerate() {
            for s in 0..5u64 {
                let t = SimTime::ZERO + SimDuration::secs(s * 20);
                let route = table.route(d, t);
                assert_eq!(route.vector_cpu, cpu);
                assert!(!route.remote);
                assert!(!route.polluted);
            }
        }
        assert_eq!(table.rebalances(), 0);
    }

    #[test]
    fn balanced_mostly_routes_remotely() {
        let designated: Vec<CpuId> = (0..64u16).map(|d| CpuId(4 + d % 32)).collect();
        let mut table = VectorTable::new(
            IrqMode::Balanced,
            designated,
            cpus(40),
            SimRng::from_seed(2),
        );
        let remote = (0..64)
            .filter(|&d| table.route(d, SimTime::ZERO).remote)
            .count();
        // 39/40 chance per device of landing elsewhere.
        assert!(remote > 55, "only {remote}/64 remote");
    }

    #[test]
    fn balancer_reshuffles_periodically() {
        let designated: Vec<CpuId> = (0..8u16).map(CpuId).collect();
        let mut table = VectorTable::new(
            IrqMode::Balanced,
            designated,
            cpus(40),
            SimRng::from_seed(3),
        );
        let before: Vec<CpuId> = (0..8)
            .map(|d| table.route(d, SimTime::ZERO).vector_cpu)
            .collect();
        let later = SimTime::ZERO + SimDuration::secs(35);
        let after: Vec<CpuId> = (0..8).map(|d| table.route(d, later).vector_cpu).collect();
        assert!(table.rebalances() >= 3);
        assert_ne!(before, after, "shuffle should move at least one vector");
    }

    #[test]
    fn migration_pollutes_briefly() {
        let designated: Vec<CpuId> = (0..32u16).map(CpuId).collect();
        let mut table = VectorTable::new(
            IrqMode::Balanced,
            designated,
            cpus(40),
            SimRng::from_seed(4),
        );
        // Immediately after the 10 s rebalance, most vectors moved and
        // are cold.
        let just_after = SimTime::ZERO + SimDuration::secs(10) + SimDuration::millis(1);
        let polluted = (0..32)
            .filter(|&d| table.route(d, just_after).polluted)
            .count();
        assert!(polluted > 20, "{polluted}/32 polluted");
        // Long after, the cache warmed up again.
        let warm = just_after + SimDuration::secs(5);
        let still = (0..32).filter(|&d| table.route(d, warm).polluted).count();
        assert_eq!(still, 0);
    }

    #[test]
    fn vector_count_matches_paper() {
        let designated: Vec<CpuId> = (0..64u16).map(|d| CpuId(d % 40)).collect();
        let table = VectorTable::new(IrqMode::Pinned, designated, cpus(40), SimRng::from_seed(5));
        assert_eq!(table.vector_count(), 2_560);
        assert_eq!(table.devices(), 64);
    }
}
