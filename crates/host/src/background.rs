//! Background (CPU-bound) workload: the daemons that interfere.
//!
//! §IV-B of the paper finds with LTTng that "relatively lightweight
//! background threads/processes" — llvmpipe (GNOME), lttng-consumerd,
//! IRQ threads, SSH daemons, kworkers — interfere with fio even though
//! only 64 fio threads were started. We model them as a Poisson
//! arrival process of CPU bursts with:
//!
//! * heavy-tailed burst lengths (a short-burst population plus a
//!   long-burst population up to tens of milliseconds),
//! * *non-preemptible sections* inside each burst
//!   (`preempt_disable()` regions under a voluntary-preemption
//!   kernel): these bound the wake-up latency of even SCHED_FIFO
//!   tasks — the residue visible in the paper's Fig. 7 (~600 µs),
//! * *irq-off subsections* at the head of each non-preemptible
//!   section: these delay hardware interrupt delivery.

use afa_sim::{SimDuration, SimRng, SimTime};

/// How one daemon class draws its burst lengths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BurstProfile {
    /// Uniform in `[min, max]`.
    Uniform {
        /// Shortest burst.
        min: SimDuration,
        /// Longest burst.
        max: SimDuration,
    },
    /// Log-normal around `mean`, hard-capped at `cap`.
    LogNormal {
        /// Location of the distribution (mean of the underlying
        /// normal's exponential).
        mean: SimDuration,
        /// Hard cap.
        cap: SimDuration,
    },
}

impl BurstProfile {
    /// Samples one burst length.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            BurstProfile::Uniform { min, max } => {
                SimDuration::nanos(rng.range_inclusive(min.as_nanos(), max.as_nanos()))
            }
            BurstProfile::LogNormal { mean, cap } => {
                let us = rng
                    .log_normal(mean.as_micros_f64().ln(), 0.8)
                    .min(cap.as_micros_f64());
                SimDuration::from_micros_f64(us)
            }
        }
    }
}

/// One class of interfering daemon, as the paper's LTTng analysis
/// names them (§IV-B: llvmpipe, lttng-consumerd, SSH daemons,
/// kworkers, ...).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DaemonClass {
    /// Process name for reports.
    pub name: &'static str,
    /// Relative arrival weight within the mixture.
    pub weight: f64,
    /// Burst-length distribution.
    pub burst: BurstProfile,
}

/// Number of daemon classes in a [`BackgroundConfig`].
pub const DAEMON_CLASSES: usize = 4;

/// Parameters of the background workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackgroundConfig {
    /// Mean inter-arrival time of bursts, system-wide (Poisson).
    pub mean_interarrival: SimDuration,
    /// The daemon mixture.
    pub classes: [DaemonClass; DAEMON_CLASSES],
    /// Mean preemptible gap between non-preemptible sections.
    pub np_gap_mean: SimDuration,
    /// Pareto scale of non-preemptible section lengths.
    pub np_scale: SimDuration,
    /// Pareto shape of non-preemptible section lengths.
    pub np_shape: f64,
    /// Hard cap on non-preemptible sections (a healthy kernel's
    /// worst `preempt_disable` residence).
    pub np_cap: SimDuration,
    /// Fraction of each non-preemptible section (from its start) that
    /// also runs with interrupts disabled.
    pub irqoff_fraction: f64,
    /// Hard cap on the irq-off prefix.
    pub irqoff_cap: SimDuration,
}

impl BackgroundConfig {
    /// The calibrated default: enough daemon activity that roughly
    /// half a percent of QD1 I/Os on a busy 32-CPU fio set collide
    /// with a burst — reproducing the paper's Fig. 6/7 tail mass.
    pub fn centos7_desktop() -> Self {
        BackgroundConfig {
            mean_interarrival: SimDuration::micros(5_500),
            classes: [
                DaemonClass {
                    name: "kworker",
                    weight: 0.45,
                    burst: BurstProfile::Uniform {
                        min: SimDuration::micros(50),
                        max: SimDuration::micros(300),
                    },
                },
                DaemonClass {
                    name: "sshd/systemd",
                    weight: 0.20,
                    burst: BurstProfile::Uniform {
                        min: SimDuration::micros(100),
                        max: SimDuration::micros(600),
                    },
                },
                DaemonClass {
                    name: "lttng-consumerd",
                    weight: 0.15,
                    burst: BurstProfile::Uniform {
                        min: SimDuration::micros(300),
                        max: SimDuration::millis(3),
                    },
                },
                DaemonClass {
                    name: "llvmpipe",
                    weight: 0.20,
                    burst: BurstProfile::LogNormal {
                        mean: SimDuration::millis(6),
                        cap: SimDuration::millis(24),
                    },
                },
            ],
            np_gap_mean: SimDuration::micros(400),
            np_scale: SimDuration::micros(15),
            np_shape: 1.15,
            np_cap: SimDuration::micros(500),
            irqoff_fraction: 0.3,
            irqoff_cap: SimDuration::micros(90),
        }
    }

    /// A quiet system (used by unit tests to disable interference).
    pub fn silent() -> Self {
        BackgroundConfig {
            mean_interarrival: SimDuration::secs(1_000_000),
            ..Self::centos7_desktop()
        }
    }

    /// Samples the next inter-arrival gap.
    pub fn sample_interarrival(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_micros_f64(rng.exponential(self.mean_interarrival.as_micros_f64()))
    }

    /// Samples a daemon class index by weight, then its burst length.
    pub fn sample_burst(&self, rng: &mut SimRng) -> (usize, SimDuration) {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut r = rng.uniform_f64(0.0, total);
        let mut idx = self.classes.len() - 1;
        for (i, class) in self.classes.iter().enumerate() {
            r -= class.weight;
            if r <= 0.0 {
                idx = i;
                break;
            }
        }
        (idx, self.classes[idx].burst.sample(rng))
    }

    /// Samples one burst length (class-agnostic convenience).
    pub fn sample_burst_len(&self, rng: &mut SimRng) -> SimDuration {
        self.sample_burst(rng).1
    }
}

/// One background burst occupying a CPU, with its precomputed
/// non-preemptible and irq-off sections.
#[derive(Clone, Debug)]
pub struct BgBurst {
    start: SimTime,
    end: SimTime,
    /// Non-preemptible sections as absolute `(start, end)` intervals,
    /// sorted, non-overlapping. Shifted when the burst is pushed back.
    np_sections: Vec<(SimTime, SimTime)>,
    /// irq-off prefix length of each section (parallel to
    /// `np_sections`).
    irqoff_len: Vec<SimDuration>,
}

impl BgBurst {
    /// Generates a burst starting at `start` with the given length.
    pub fn generate(
        config: &BackgroundConfig,
        start: SimTime,
        len: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        let end = start + len;
        let mut np_sections = Vec::new();
        let mut irqoff_len = Vec::new();
        let mut cursor = start;
        loop {
            let gap =
                SimDuration::from_micros_f64(rng.exponential(config.np_gap_mean.as_micros_f64()));
            cursor += gap;
            if cursor >= end {
                break;
            }
            let np = SimDuration::from_micros_f64(
                rng.pareto(config.np_scale.as_micros_f64(), config.np_shape),
            )
            .min(config.np_cap);
            let sec_end = (cursor + np).min(end);
            let sec_len = sec_end - cursor;
            let irqoff =
                SimDuration::from_micros_f64(sec_len.as_micros_f64() * config.irqoff_fraction)
                    .min(config.irqoff_cap);
            np_sections.push((cursor, sec_end));
            irqoff_len.push(irqoff);
            cursor = sec_end;
        }
        BgBurst {
            start,
            end,
            np_sections,
            irqoff_len,
        }
    }

    /// Burst start.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Current burst end (grows when the burst is displaced).
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Whether the burst occupies the CPU at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Extends the burst by `d` (the CPU time stolen by a preempting
    /// I/O task must still be executed).
    pub fn push_back(&mut self, d: SimDuration) {
        self.end += d;
    }

    /// Extends the burst by stacking another arrival's length onto it
    /// (runqueue backlog on this CPU).
    pub fn stack(&mut self, len: SimDuration) {
        self.end += len;
    }

    /// If `t` falls inside a non-preemptible section, returns the
    /// section's end; otherwise `t`.
    pub fn preemptible_at(&self, t: SimTime) -> SimTime {
        match self.np_sections.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(i) => self.np_sections[i].1,
            Err(0) => t,
            Err(i) => {
                let (s, e) = self.np_sections[i - 1];
                if t >= s && t < e {
                    e
                } else {
                    t
                }
            }
        }
    }

    /// If `t` falls inside an irq-off prefix, returns the instant
    /// interrupts are re-enabled; otherwise `t`.
    pub fn irqs_enabled_at(&self, t: SimTime) -> SimTime {
        let idx = match self.np_sections.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        };
        if let Some(i) = idx {
            let (s, _) = self.np_sections[i];
            let off_end = s + self.irqoff_len[i];
            if t >= s && t < off_end {
                return off_end;
            }
        }
        t
    }

    /// Number of non-preemptible sections (for tests).
    pub fn np_section_count(&self) -> usize {
        self.np_sections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_us(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(n)
    }

    #[test]
    fn burst_spans_its_length() {
        let cfg = BackgroundConfig::centos7_desktop();
        let mut rng = SimRng::from_seed(1);
        let b = BgBurst::generate(&cfg, t_us(100), SimDuration::millis(5), &mut rng);
        assert_eq!(b.start(), t_us(100));
        assert_eq!(b.end(), t_us(5_100));
        assert!(b.active_at(t_us(100)));
        assert!(b.active_at(t_us(5_099)));
        assert!(!b.active_at(t_us(5_100)));
        assert!(!b.active_at(t_us(99)));
    }

    #[test]
    fn long_bursts_contain_np_sections() {
        let cfg = BackgroundConfig::centos7_desktop();
        let mut rng = SimRng::from_seed(2);
        let b = BgBurst::generate(&cfg, SimTime::ZERO, SimDuration::millis(20), &mut rng);
        assert!(
            b.np_section_count() > 5,
            "{} sections",
            b.np_section_count()
        );
    }

    #[test]
    fn np_sections_respect_cap() {
        let cfg = BackgroundConfig::centos7_desktop();
        let mut rng = SimRng::from_seed(3);
        for seed in 0..50u64 {
            let mut r = SimRng::from_seed(seed);
            let b = BgBurst::generate(&cfg, SimTime::ZERO, SimDuration::millis(20), &mut r);
            for i in 0..b.np_section_count() {
                let (s, e) = b.np_sections[i];
                assert!(e - s <= cfg.np_cap, "np section too long");
                assert!(b.irqoff_len[i] <= cfg.irqoff_cap);
                assert!(b.irqoff_len[i] <= e - s);
            }
        }
        let _ = rng.next_u64();
    }

    #[test]
    fn preemptible_at_inside_and_outside() {
        let cfg = BackgroundConfig::centos7_desktop();
        let mut rng = SimRng::from_seed(4);
        let b = BgBurst::generate(&cfg, SimTime::ZERO, SimDuration::millis(20), &mut rng);
        assert!(b.np_section_count() > 0);
        let (s, e) = b.np_sections[0];
        let mid = s + (e - s) / 2;
        assert_eq!(b.preemptible_at(mid), e);
        assert_eq!(b.preemptible_at(s), e);
        // Just before the section: preemptible immediately.
        if s > SimTime::ZERO {
            let before = s - SimDuration::nanos(1);
            assert_eq!(b.preemptible_at(before), before);
        }
    }

    #[test]
    fn irqoff_prefix_blocks_then_enables() {
        let cfg = BackgroundConfig::centos7_desktop();
        for seed in 0..100u64 {
            let mut rng = SimRng::from_seed(seed);
            let b = BgBurst::generate(&cfg, SimTime::ZERO, SimDuration::millis(20), &mut rng);
            let Some(i) = (0..b.np_section_count()).find(|&i| !b.irqoff_len[i].is_zero()) else {
                continue;
            };
            let (s, _) = b.np_sections[i];
            let off_end = s + b.irqoff_len[i];
            assert_eq!(b.irqs_enabled_at(s), off_end);
            assert_eq!(b.irqs_enabled_at(off_end), off_end);
            return;
        }
        panic!("no burst with an irq-off prefix found");
    }

    #[test]
    fn push_back_extends_end() {
        let cfg = BackgroundConfig::centos7_desktop();
        let mut rng = SimRng::from_seed(5);
        let mut b = BgBurst::generate(&cfg, SimTime::ZERO, SimDuration::millis(1), &mut rng);
        let end = b.end();
        b.push_back(SimDuration::micros(7));
        assert_eq!(b.end(), end + SimDuration::micros(7));
        b.stack(SimDuration::millis(2));
        assert_eq!(
            b.end(),
            end + SimDuration::micros(7) + SimDuration::millis(2)
        );
    }

    #[test]
    fn sampled_lengths_respect_caps() {
        let cfg = BackgroundConfig::centos7_desktop();
        let mut rng = SimRng::from_seed(6);
        for _ in 0..10_000 {
            let (class, len) = cfg.sample_burst(&mut rng);
            assert!(class < DAEMON_CLASSES);
            assert!(len <= SimDuration::millis(24));
            assert!(len >= SimDuration::micros(1));
        }
    }

    #[test]
    fn class_mixture_matches_weights() {
        let cfg = BackgroundConfig::centos7_desktop();
        let mut rng = SimRng::from_seed(8);
        let mut counts = [0u32; DAEMON_CLASSES];
        let n = 100_000;
        for _ in 0..n {
            counts[cfg.sample_burst(&mut rng).0] += 1;
        }
        let total: f64 = cfg.classes.iter().map(|c| c.weight).sum();
        for (i, class) in cfg.classes.iter().enumerate() {
            let expected = class.weight / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "{}: {got:.3} vs {expected:.3}",
                class.name
            );
        }
    }

    #[test]
    fn silent_config_rarely_arrives() {
        let cfg = BackgroundConfig::silent();
        let mut rng = SimRng::from_seed(7);
        let gap = cfg.sample_interarrival(&mut rng);
        assert!(gap > SimDuration::secs(1_000));
    }
}
