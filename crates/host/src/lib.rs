//! Host/OS model for the AFA reproduction.
//!
//! Simulates the storage host of the paper's §III-A setup — a
//! dual-socket Xeon E5-2690 v2 (2 × 10 cores × 2 HT = 40 logical CPUs)
//! running a Linux-4.7-like kernel — at the level of detail the paper's
//! analysis needs:
//!
//! * [`CpuTopology`] — sockets, physical cores, hyper-thread siblings,
//!   with the paper's logical numbering (cpu 0–19 are first threads,
//!   cpu 20–39 their HT siblings),
//! * [`KernelConfig`] — the exact knobs the paper turns: `isolcpus`,
//!   `nohz_full`, `rcu_nocbs`, `idle=poll`, `processor.max_cstate`,
//!   timer tick rate, and the IRQ placement mode,
//! * [`SchedPolicy`] — CFS (`SCHED_OTHER`) vs. `chrt`-style
//!   `SCHED_FIFO` 99 for the I/O workers,
//! * [`BackgroundConfig`] / bursts — the daemons the paper catches
//!   interfering (llvmpipe, lttng-consumerd, sshd, kworkers): Poisson
//!   arrivals, heavy-tailed bursts, non-preemptible kernel sections
//!   (which bound even RT wake-ups) and irq-off subsections (which
//!   delay interrupt delivery),
//! * [`VectorTable`] — 64 devices × 40 CPUs of MSI-X vectors with a
//!   balancer that, like the stock kernel the paper observed, ignores
//!   CPU affinity (§IV-D), vs. explicit pinning,
//! * [`HostModel`] — the per-CPU scheduler: wake-up preemption at timer
//!   -tick granularity for CFS, immediate preemption for FIFO, C-state
//!   exit latencies via a menu-like governor, hyper-thread contention,
//!   and remote-completion IPI costs.
//!
//! The model is *lazy*: CPUs keep interval state (current background
//! burst, busy-until times, tick phase) that is synchronized on each
//! query, so no per-tick or per-burst events are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod background;
mod config;
mod cpu;
mod irq;
mod model;
mod task;

pub use background::{BackgroundConfig, BgBurst, BurstProfile, DaemonClass, DAEMON_CLASSES};
pub use config::{CStateSpec, IdlePolicy, IrqMode, KernelConfig, SchedProfile};
pub use cpu::{CpuId, CpuSet, CpuTopology};
pub use irq::{IrqDelivery, VectorTable};
pub use model::{BgPlacement, HostModel, IrqOutcome, WakeBreakdown};
pub use task::SchedPolicy;

/// Deterministic 64-bit mixer used for per-pair cost derivation
/// (splitmix64 step).
pub(crate) fn pair_hash(state: &mut u64) -> u64 {
    afa_sim::rng::splitmix64(state)
}
