//! Property-based tests for the PCIe fabric, on the first-party
//! [`afa_sim::check`] harness.

use afa_pcie::{LinkSpec, PcieFabric};
use afa_sim::check::run_cases;
use afa_sim::SimTime;

/// Byte conservation: whatever leaves the devices arrives at the
/// uplinks, for any traffic pattern.
#[test]
fn bytes_are_conserved() {
    run_cases("bytes_are_conserved", 64, |g| {
        let ops = g.vec_of(1, 300, |g| (g.usize_in(0, 64), g.u32_in(1, 64)));
        let mut fabric = PcieFabric::paper_single_host(64);
        let mut expected = 0u64;
        let mut clock = SimTime::ZERO;
        for (device, pages) in ops {
            let bytes = pages as u64 * 4096;
            let t = fabric.submit_command(device, clock);
            let arrival = fabric.deliver_completion(device, t, bytes);
            assert!(arrival > clock);
            // Payload + CQE (16) + MSI (4) per completion.
            expected += bytes + 20;
            clock = clock.max(t);
        }
        let stats = fabric.stats();
        assert_eq!(stats.device_bytes, stats.uplink_bytes);
        assert_eq!(stats.uplink_bytes, expected);
    });
}

/// Transfers on one link never complete out of order: a later
/// reservation arrives no earlier than an earlier one.
#[test]
fn per_device_fifo_ordering() {
    run_cases("per_device_fifo_ordering", 64, |g| {
        let gaps = g.vec_u64(2, 100, 0, 100_000);
        let mut fabric = PcieFabric::paper_single_host(4);
        let mut clock = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for gap in gaps {
            clock += afa_sim::SimDuration::nanos(gap);
            let arrival = fabric.deliver_completion(2, clock, 4096);
            assert!(
                arrival >= last_arrival,
                "reordered: {arrival} < {last_arrival}"
            );
            last_arrival = arrival;
        }
    });
}

/// Serialization time scales linearly with payload on an uncontended
/// link.
#[test]
fn serialization_is_linear() {
    run_cases("serialization_is_linear", 128, |g| {
        let pages = g.u64_in(1, 1024);
        let spec = LinkSpec::gen3_x4();
        let one = spec.serialization(4096).as_nanos();
        let many = spec.serialization(4096 * pages).as_nanos();
        let expect = one * pages;
        let err = (many as i64 - expect as i64).unsigned_abs();
        assert!(err <= pages, "nonlinear serialization: {many} vs {expect}");
    });
}

/// The unloaded round trip is identical for every device in the
/// single-host setup (same two-switch path shape).
#[test]
fn unloaded_round_trip_uniform() {
    run_cases("unloaded_round_trip_uniform", 64, |g| {
        let device = g.usize_in(0, 64);
        let mut fabric = PcieFabric::paper_single_host(64);
        let t = fabric.submit_command(device, SimTime::ZERO);
        let arrival = fabric.deliver_completion(device, t, 4096);
        let us = arrival.as_micros_f64();
        assert!((3.0..7.0).contains(&us), "device {device}: {us} us");
    });
}
