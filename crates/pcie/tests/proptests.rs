//! Property-based tests for the PCIe fabric.

use afa_pcie::{LinkSpec, PcieFabric};
use afa_sim::SimTime;
use proptest::prelude::*;

proptest! {
    /// Byte conservation: whatever leaves the devices arrives at the
    /// uplinks, for any traffic pattern.
    #[test]
    fn bytes_are_conserved(ops in prop::collection::vec((0usize..64, 1u32..64), 1..300)) {
        let mut fabric = PcieFabric::paper_single_host(64);
        let mut expected = 0u64;
        let mut clock = SimTime::ZERO;
        for (device, pages) in ops {
            let bytes = pages as u64 * 4096;
            let t = fabric.submit_command(device, clock);
            let arrival = fabric.deliver_completion(device, t, bytes);
            prop_assert!(arrival > clock);
            // Payload + CQE (16) + MSI (4) per completion.
            expected += bytes + 20;
            clock = clock.max(t);
        }
        let stats = fabric.stats();
        prop_assert_eq!(stats.device_bytes, stats.uplink_bytes);
        prop_assert_eq!(stats.uplink_bytes, expected);
    }

    /// Transfers on one link never complete out of order: a later
    /// reservation arrives no earlier than an earlier one.
    #[test]
    fn per_device_fifo_ordering(gaps in prop::collection::vec(0u64..100_000, 2..100)) {
        let mut fabric = PcieFabric::paper_single_host(4);
        let mut clock = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for gap in gaps {
            clock = clock + afa_sim::SimDuration::nanos(gap);
            let arrival = fabric.deliver_completion(2, clock, 4096);
            prop_assert!(arrival >= last_arrival, "reordered: {arrival} < {last_arrival}");
            last_arrival = arrival;
        }
    }

    /// Serialization time scales linearly with payload on an
    /// uncontended link.
    #[test]
    fn serialization_is_linear(pages in 1u64..1024) {
        let spec = LinkSpec::gen3_x4();
        let one = spec.serialization(4096).as_nanos();
        let many = spec.serialization(4096 * pages).as_nanos();
        let expect = one * pages;
        let err = (many as i64 - expect as i64).unsigned_abs();
        prop_assert!(err <= pages, "nonlinear serialization: {many} vs {expect}");
    }

    /// The unloaded round trip is identical for every device in the
    /// single-host setup (same two-switch path shape).
    #[test]
    fn unloaded_round_trip_uniform(device in 0usize..64) {
        let mut fabric = PcieFabric::paper_single_host(64);
        let t = fabric.submit_command(device, SimTime::ZERO);
        let arrival = fabric.deliver_completion(device, t, 4096);
        let us = arrival.as_micros_f64();
        prop_assert!((3.0..7.0).contains(&us), "device {device}: {us} us");
    }
}
