//! The two-level switch fabric of the paper's enclosure.
//!
//! Fig. 2 of the paper: seven 96-lane/24-port Gen3 switches in a
//! two-level tree. We model three *spine* switches (each owning one
//! x16 host uplink) and four *leaf* switches that carry the 61 device
//! slots; every leaf has one x16 link to each spine. Each slot (an M.2
//! carrier card with four NVMe SSDs, Fig. 3) is statically assigned to
//! one uplink, matching the enclosure's static partitioning.
//!
//! The single-host experiments (§III-A) use one third of the array:
//! up to 64 SSDs behind uplink 0.

use afa_sim::{SimDuration, SimTime};

use crate::link::{Link, LinkSpec};

/// Number of spine switches (= host uplinks).
pub const SPINES: usize = 3;
/// Number of leaf switches carrying device slots.
pub const LEAVES: usize = 4;
/// Device slots in the enclosure.
pub const SLOTS: usize = 61;
/// M.2 SSDs per carrier-card slot.
pub const SSDS_PER_SLOT: usize = 4;

/// Where one SSD lives in the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotAssignment {
    /// Carrier-card slot index (0..61).
    pub slot: u16,
    /// Leaf switch carrying the slot.
    pub leaf: u8,
    /// Spine switch / host uplink the slot is statically assigned to.
    pub spine: u8,
}

/// Aggregate fabric accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Payload bytes that crossed the host uplink(s) upstream.
    pub uplink_bytes: u64,
    /// Payload bytes that left the devices upstream.
    pub device_bytes: u64,
    /// Completion interrupts (MSI-X messages) delivered.
    pub interrupts: u64,
    /// Commands fetched by devices.
    pub commands: u64,
}

impl FabricStats {
    /// Accumulates another accounting snapshot into this one. Sharded
    /// runs split the counters across per-shard fabric replicas
    /// (device legs accrue at the owning shard, uplink legs at the
    /// hub); summing the replicas reproduces the single-world totals.
    pub fn absorb(&mut self, other: FabricStats) {
        self.uplink_bytes += other.uplink_bytes;
        self.device_bytes += other.device_bytes;
        self.interrupts += other.interrupts;
        self.commands += other.commands;
    }
}

/// A validated-but-unbooked claim on the shared upstream legs,
/// produced by
/// [`PcieFabric::preview_completion_shared_legs`] and booked by
/// [`PcieFabric::commit_completion_shared_legs`]. The busy windows are
/// exact — the preview only succeeds when both links are idle at the
/// arrival instants — so any later real reservation that overlaps them
/// invalidates the reservation (the fusion path then de-fuses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedLegReservation {
    /// The completing device.
    pub device: usize,
    /// Bytes on the wire (data + CQE + MSI when interrupt-driven).
    pub payload: u64,
    /// Whether the completion is reaped by polling (no MSI message).
    pub polled: bool,
    /// Index into the leaf→spine link array (`leaf * SPINES + spine`).
    pub leaf: usize,
    /// Spine switch / host uplink index.
    pub spine: usize,
    /// When the payload starts serializing on the leaf→spine link.
    pub leaf_start: SimTime,
    /// When the leaf→spine link goes idle again.
    pub leaf_busy_end: SimTime,
    /// When the payload starts serializing on the spine→host uplink.
    pub up_start: SimTime,
    /// When the uplink goes idle again.
    pub up_busy_end: SimTime,
    /// When the CQE (or MSI-X interrupt) lands at the host.
    pub at_host: SimTime,
}

/// The switch fabric connecting one or more hosts to the SSDs.
///
/// Links are directional resources: the downstream direction carries
/// doorbells/command fetches (tiny), the upstream direction carries
/// read data, completion entries and MSI-X interrupt messages.
#[derive(Clone, Debug)]
pub struct PcieFabric {
    /// Per-device x4 links, up and down.
    device_up: Vec<Link>,
    device_down: Vec<Link>,
    /// leaf→spine x16 upstream links, indexed `leaf * SPINES + spine`.
    leaf_up: Vec<Link>,
    /// spine→leaf x16 downstream links, same indexing.
    leaf_down: Vec<Link>,
    /// spine→host x16 uplinks (upstream) and host→spine (downstream).
    uplink_up: Vec<Link>,
    uplink_down: Vec<Link>,
    assignments: Vec<SlotAssignment>,
    hop_latency: SimDuration,
    msi_latency: SimDuration,
    stats: FabricStats,
}

/// Bytes of a submission-queue entry fetch (SQE + doorbell overhead).
const COMMAND_BYTES: u64 = 64;
/// Bytes of a completion-queue entry.
const CQE_BYTES: u64 = 16;
/// Bytes of an MSI-X message write.
const MSI_BYTES: u64 = 4;

impl PcieFabric {
    /// Builds the full three-host enclosure with `ssds` devices spread
    /// round-robin over the slots assigned to uplink 0 first.
    ///
    /// # Panics
    ///
    /// Panics if `ssds` exceeds the enclosure capacity
    /// (61 slots × 4 = 244).
    pub fn paper_enclosure(ssds: usize) -> Self {
        assert!(
            ssds <= SLOTS * SSDS_PER_SLOT,
            "enclosure capacity is 244 SSDs"
        );
        // Static slot → (leaf, spine) assignment: slots distributed
        // round-robin over leaves; each host owns ~1/3 of the slots.
        let per_host = SLOTS.div_ceil(SPINES); // 21, 20, 20
        let mut assignments = Vec::with_capacity(ssds);
        for ssd in 0..ssds {
            let slot = ssd / SSDS_PER_SLOT;
            let spine = (slot / per_host).min(SPINES - 1) as u8;
            let leaf = (slot % LEAVES) as u8;
            assignments.push(SlotAssignment {
                slot: slot as u16,
                leaf,
                spine,
            });
        }
        let prop = SimDuration::nanos(50);
        let mk = |spec: LinkSpec, n: usize| -> Vec<Link> {
            (0..n).map(|_| Link::new(spec, prop)).collect()
        };
        PcieFabric {
            device_up: mk(LinkSpec::gen3_x4(), ssds),
            device_down: mk(LinkSpec::gen3_x4(), ssds),
            // x8 per (leaf, spine) pair: the widest links that keep a
            // 96-lane leaf ASIC within budget (16 slots × x4 + 3 × x8).
            leaf_up: mk(LinkSpec::gen3_x8(), LEAVES * SPINES),
            leaf_down: mk(LinkSpec::gen3_x8(), LEAVES * SPINES),
            uplink_up: mk(LinkSpec::gen3_x16(), SPINES),
            uplink_down: mk(LinkSpec::gen3_x16(), SPINES),
            assignments,
            // Per-switch store-and-forward + TLP framing overhead.
            hop_latency: SimDuration::nanos(600),
            // MSI-X write-to-interrupt-vector delivery at the host.
            msi_latency: SimDuration::nanos(300),
            stats: FabricStats::default(),
        }
    }

    /// Builds the single-host view the paper's experiments use: up to
    /// 64 SSDs, all statically assigned to uplink 0 (§III-A, Fig. 4).
    ///
    /// # Panics
    ///
    /// Panics if `ssds > 64` (the host BIOS's enumeration limit in the
    /// paper).
    pub fn paper_single_host(ssds: usize) -> Self {
        assert!(ssds <= 64, "single-host setup is limited to 64 SSDs");
        let mut fabric = Self::paper_enclosure(ssds);
        for a in &mut fabric.assignments {
            a.spine = 0;
        }
        fabric
    }

    /// Number of SSDs attached.
    pub fn devices(&self) -> usize {
        self.assignments.len()
    }

    /// The slot assignment of a device.
    pub fn assignment(&self, device: usize) -> SlotAssignment {
        self.assignments[device]
    }

    /// Aggregate accounting.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Usable bandwidth of one host uplink, bytes/second.
    pub fn uplink_bandwidth(&self) -> f64 {
        LinkSpec::gen3_x16().bytes_per_sec()
    }

    fn leaf_index(&self, a: SlotAssignment) -> usize {
        a.leaf as usize * SPINES + a.spine as usize
    }

    /// Carries a command submission (doorbell + SQE fetch) from the
    /// host to `device`, returning when the device sees the command.
    pub fn submit_command(&mut self, device: usize, now: SimTime) -> SimTime {
        let at_entry = self.submit_command_shared_legs(device, now);
        self.submit_command_device_leg(device, at_entry)
    }

    /// The shared first legs of a submission: reserves the host→spine
    /// and spine→leaf links from the doorbell instant and returns
    /// when the command reaches the leaf egress (device-link
    /// ingress). Sharded runs call this on the hub shard — the shared
    /// FIFOs must be reserved in global submit order; the 64 B
    /// commands barely load the links, but the FIFO ordering itself
    /// phase-couples the submitting threads, and that coupling is
    /// what lets completion convoys form on the upstream legs (the
    /// paper's shared-fabric contention). The timestamp is then
    /// handed to the device's owner for
    /// [`submit_command_device_leg`](Self::submit_command_device_leg).
    pub fn submit_command_shared_legs(&mut self, device: usize, now: SimTime) -> SimTime {
        let a = self.assignments[device];
        let li = self.leaf_index(a);
        self.stats.commands += 1;
        // host → spine → leaf → device, one hop delay per switch.
        let t = self.uplink_down[a.spine as usize].reserve(now, COMMAND_BYTES);
        let t = self.leaf_down[li].reserve(t + self.hop_latency, COMMAND_BYTES);
        t + self.hop_latency
    }

    /// The device-private last leg of a submission: reserves the
    /// device's x4 downstream link from the leaf-egress timestamp and
    /// returns when the device sees the command. Composing the two
    /// legs is timing-identical to
    /// [`submit_command`](Self::submit_command).
    pub fn submit_command_device_leg(&mut self, device: usize, at_entry: SimTime) -> SimTime {
        self.device_down[device].reserve(at_entry, COMMAND_BYTES)
    }

    /// Carries read data (`bytes`), the CQE and the MSI-X interrupt
    /// from `device` to the host, returning when the interrupt fires
    /// at the host.
    pub fn deliver_completion(&mut self, device: usize, now: SimTime, bytes: u64) -> SimTime {
        let t_leaf = self.deliver_completion_device_leg(device, now, bytes);
        self.deliver_completion_shared_legs(device, t_leaf, bytes)
    }

    /// The device-private first leg of a completion: reserves the
    /// device's x4 upstream link and returns when the payload reaches
    /// the leaf switch ingress. Sharded runs call this on the shard
    /// that owns `device`, then hand the timestamp to the hub shard
    /// for [`deliver_completion_shared_legs`](Self::deliver_completion_shared_legs).
    pub fn deliver_completion_device_leg(
        &mut self,
        device: usize,
        now: SimTime,
        bytes: u64,
    ) -> SimTime {
        self.completion_device_leg(device, now, bytes, false)
    }

    /// [`deliver_completion_device_leg`](Self::deliver_completion_device_leg)
    /// for a *polled* completion: the host discovers the CQE by
    /// reading the queue, so no MSI-X message rides the link and no
    /// interrupt is accounted.
    pub fn poll_completion_device_leg(
        &mut self,
        device: usize,
        now: SimTime,
        bytes: u64,
    ) -> SimTime {
        self.completion_device_leg(device, now, bytes, true)
    }

    fn completion_device_leg(
        &mut self,
        device: usize,
        now: SimTime,
        bytes: u64,
        polled: bool,
    ) -> SimTime {
        let payload = bytes + CQE_BYTES + if polled { 0 } else { MSI_BYTES };
        self.stats.device_bytes += payload;
        let t = self.device_up[device].reserve(now, payload);
        t + self.hop_latency
    }

    /// The shared second leg of a completion: reserves the leaf→spine
    /// and spine→host links starting from the leaf-ingress timestamp
    /// produced by [`deliver_completion_device_leg`](Self::deliver_completion_device_leg)
    /// and returns when the MSI-X interrupt fires at the host.
    /// Composing the two legs is timing-identical to
    /// [`deliver_completion`](Self::deliver_completion).
    pub fn deliver_completion_shared_legs(
        &mut self,
        device: usize,
        t_leaf: SimTime,
        bytes: u64,
    ) -> SimTime {
        self.completion_shared_legs(device, t_leaf, bytes, false)
    }

    /// [`deliver_completion_shared_legs`](Self::deliver_completion_shared_legs)
    /// for a *polled* completion: no MSI-X payload on the links, no
    /// interrupt counted, and the returned instant is when the CQE DMA
    /// write lands in host memory (no vector-delivery latency).
    pub fn poll_completion_shared_legs(
        &mut self,
        device: usize,
        t_leaf: SimTime,
        bytes: u64,
    ) -> SimTime {
        self.completion_shared_legs(device, t_leaf, bytes, true)
    }

    fn completion_shared_legs(
        &mut self,
        device: usize,
        t_leaf: SimTime,
        bytes: u64,
        polled: bool,
    ) -> SimTime {
        let a = self.assignments[device];
        let li = self.leaf_index(a);
        let payload = bytes + CQE_BYTES + if polled { 0 } else { MSI_BYTES };
        self.stats.uplink_bytes += payload;
        let t = self.leaf_up[li].reserve(t_leaf, payload);
        let t = self.uplink_up[a.spine as usize].reserve(t + self.hop_latency, payload);
        if polled {
            t
        } else {
            self.stats.interrupts += 1;
            t + self.msi_latency
        }
    }

    /// Previews the shared completion legs **without mutating** the
    /// fabric: the speculative half of the fusion fast path. Returns
    /// `None` unless both shared links are idle at the instants the
    /// payload would reach them — i.e. the chain would experience
    /// *zero* queueing — because only then is the precomputed timeline
    /// guaranteed exact until someone else claims a leg inside the
    /// reserved windows. On success the returned reservation carries
    /// both busy windows and the host-arrival instant;
    /// [`commit_completion_shared_legs`](Self::commit_completion_shared_legs)
    /// later books it, and the windows let the caller detect
    /// conflicting claims in between.
    pub fn preview_completion_shared_legs(
        &self,
        device: usize,
        t_leaf: SimTime,
        bytes: u64,
        polled: bool,
    ) -> Option<SharedLegReservation> {
        let a = self.assignments[device];
        let li = self.leaf_index(a);
        let payload = bytes + CQE_BYTES + if polled { 0 } else { MSI_BYTES };
        let leaf = &self.leaf_up[li];
        if leaf.free_at() > t_leaf {
            return None;
        }
        let leaf_busy_end = t_leaf + leaf.spec().serialization(payload);
        let up_start = leaf_busy_end + leaf.propagation() + self.hop_latency;
        let up = &self.uplink_up[a.spine as usize];
        if up.free_at() > up_start {
            return None;
        }
        let up_busy_end = up_start + up.spec().serialization(payload);
        let mut at_host = up_busy_end + up.propagation();
        if !polled {
            at_host += self.msi_latency;
        }
        Some(SharedLegReservation {
            device,
            payload,
            polled,
            leaf: li,
            spine: a.spine as usize,
            leaf_start: t_leaf,
            leaf_busy_end,
            up_start,
            up_busy_end,
            at_host,
        })
    }

    /// Books a previously previewed reservation: ratchets both shared
    /// links' `free_at` over the validated busy windows and applies
    /// exactly the accounting [`deliver_completion_shared_legs`](Self::deliver_completion_shared_legs)
    /// / [`poll_completion_shared_legs`](Self::poll_completion_shared_legs)
    /// would have. Commit order may differ from window order — the
    /// caller guarantees the windows were conflict-free, and
    /// [`Link::commit`] is a max-ratchet, so the end state is
    /// identical to in-order reserves.
    pub fn commit_completion_shared_legs(&mut self, r: &SharedLegReservation) {
        self.stats.uplink_bytes += r.payload;
        self.leaf_up[r.leaf].commit(r.leaf_busy_end, r.payload);
        self.uplink_up[r.spine].commit(r.up_busy_end, r.payload);
        if !r.polled {
            self.stats.interrupts += 1;
        }
    }

    /// Current `free_at` of the shared upstream pair `(leaf index,
    /// spine)` — the conflict probe the fusion path runs after a real
    /// claim to find pending reservations it just invalidated.
    pub fn shared_leg_free_at(&self, leaf: usize, spine: usize) -> (SimTime, SimTime) {
        (
            self.leaf_up[leaf].free_at(),
            self.uplink_up[spine].free_at(),
        )
    }

    /// Per-switch store-and-forward latency — the minimum gap any
    /// upstream leg adds, used to derive shard lookahead bounds.
    pub fn hop_latency(&self) -> SimDuration {
        self.hop_latency
    }

    /// MSI-X write-to-vector delivery latency at the host.
    pub fn msi_latency(&self) -> SimDuration {
        self.msi_latency
    }

    /// Unloaded round-trip fabric latency for a 4 KiB read, for
    /// calibration display (the paper's ~5 µs delta).
    pub fn nominal_round_trip_4k(&self) -> SimDuration {
        let down = LinkSpec::gen3_x16().serialization(COMMAND_BYTES)
            + LinkSpec::gen3_x8().serialization(COMMAND_BYTES)
            + LinkSpec::gen3_x4().serialization(COMMAND_BYTES)
            + self.hop_latency * 2
            + SimDuration::nanos(150); // 3 propagations
        let payload = 4096 + CQE_BYTES + MSI_BYTES;
        let up = LinkSpec::gen3_x4().serialization(payload)
            + LinkSpec::gen3_x8().serialization(payload)
            + LinkSpec::gen3_x16().serialization(payload)
            + self.hop_latency * 2
            + SimDuration::nanos(150)
            + self.msi_latency;
        down + up
    }

    /// Bytes carried upstream by each host uplink (for saturation
    /// tests).
    pub fn uplink_bytes_by_host(&self) -> [u64; SPINES] {
        let mut out = [0u64; SPINES];
        for (i, link) in self.uplink_up.iter().enumerate() {
            out[i] = link.bytes_carried();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enclosure_rejects_overflow() {
        let f = PcieFabric::paper_enclosure(244);
        assert_eq!(f.devices(), 244);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn enclosure_overflow_panics() {
        let _ = PcieFabric::paper_enclosure(245);
    }

    #[test]
    #[should_panic(expected = "64 SSDs")]
    fn single_host_limit_panics() {
        let _ = PcieFabric::paper_single_host(65);
    }

    #[test]
    fn single_host_assigns_everything_to_uplink_0() {
        let f = PcieFabric::paper_single_host(64);
        for d in 0..64 {
            assert_eq!(f.assignment(d).spine, 0);
        }
    }

    #[test]
    fn slots_pack_four_ssds() {
        let f = PcieFabric::paper_single_host(64);
        assert_eq!(f.assignment(0).slot, 0);
        assert_eq!(f.assignment(3).slot, 0);
        assert_eq!(f.assignment(4).slot, 1);
        assert_eq!(f.devices(), 64);
    }

    #[test]
    fn devices_spread_across_leaves() {
        let f = PcieFabric::paper_single_host(64);
        let mut leaves: Vec<u8> = (0..64).map(|d| f.assignment(d).leaf).collect();
        leaves.sort_unstable();
        leaves.dedup();
        assert_eq!(leaves.len(), LEAVES, "all leaves used");
    }

    #[test]
    fn enclosure_partitions_slots_across_hosts() {
        let f = PcieFabric::paper_enclosure(244);
        let mut per_host = [0usize; SPINES];
        for d in 0..244 {
            per_host[f.assignment(d).spine as usize] += 1;
        }
        for count in per_host {
            assert!(count >= 60, "host partition too small: {per_host:?}");
        }
    }

    #[test]
    fn round_trip_is_about_5_microseconds() {
        let mut f = PcieFabric::paper_single_host(64);
        let at_dev = f.submit_command(17, SimTime::ZERO);
        let at_host = f.deliver_completion(17, at_dev, 4096);
        let us = at_host.as_micros_f64();
        assert!((3.0..7.0).contains(&us), "round trip {us} us");
        let nominal = f.nominal_round_trip_4k().as_micros_f64();
        assert!(
            (nominal - us).abs() < 1.5,
            "nominal {nominal} vs measured {us}"
        );
    }

    #[test]
    fn byte_conservation_device_to_uplink() {
        let mut f = PcieFabric::paper_single_host(8);
        for d in 0..8 {
            let t = f.submit_command(d, SimTime::ZERO);
            f.deliver_completion(d, t, 4096);
        }
        let s = f.stats();
        assert_eq!(s.device_bytes, s.uplink_bytes, "bytes in == bytes out");
        assert_eq!(s.interrupts, 8);
        assert_eq!(s.commands, 8);
        assert_eq!(f.uplink_bytes_by_host()[0], s.uplink_bytes);
    }

    #[test]
    fn polled_completions_carry_no_msi_payload_or_interrupt() {
        let mut irq = PcieFabric::paper_single_host(8);
        let mut poll = PcieFabric::paper_single_host(8);
        for d in 0..8 {
            let t_leaf = irq.deliver_completion_device_leg(d, SimTime::ZERO, 4096);
            irq.deliver_completion_shared_legs(d, t_leaf, 4096);
            let p_leaf = poll.poll_completion_device_leg(d, SimTime::ZERO, 4096);
            poll.poll_completion_shared_legs(d, p_leaf, 4096);
        }
        let (i, p) = (irq.stats(), poll.stats());
        assert_eq!(i.interrupts, 8);
        assert_eq!(
            p.interrupts, 0,
            "a polled reap must not count as an interrupt"
        );
        assert_eq!(
            i.device_bytes - p.device_bytes,
            8 * MSI_BYTES,
            "the 4-byte MSI-X message must vanish from the device legs"
        );
        assert_eq!(
            i.uplink_bytes - p.uplink_bytes,
            8 * MSI_BYTES,
            "and from the shared uplink legs"
        );
        assert_eq!(p.device_bytes, p.uplink_bytes, "bytes in == bytes out");
    }

    #[test]
    fn polled_completion_lands_msi_latency_earlier_unloaded() {
        let mut irq = PcieFabric::paper_single_host(2);
        let mut poll = PcieFabric::paper_single_host(2);
        let a = irq.deliver_completion(0, SimTime::ZERO, 4096);
        let t_leaf = poll.poll_completion_device_leg(0, SimTime::ZERO, 4096);
        let b = poll.poll_completion_shared_legs(0, t_leaf, 4096);
        // Unloaded, the polled CQE lands earlier than the interrupt
        // fires: no vector delivery, and 4 fewer bytes per leg.
        assert!(b < a, "polled {b} should precede interrupt {a}");
        assert!(
            a.saturating_since(b) >= irq.msi_latency(),
            "gap {} below msi latency",
            a.saturating_since(b)
        );
    }

    #[test]
    fn preview_commit_matches_reserve_exactly() {
        for polled in [false, true] {
            let mut real = PcieFabric::paper_single_host(8);
            let mut fused = PcieFabric::paper_single_host(8);
            let t_leaf = SimTime::from_nanos(5_000);
            let r = fused
                .preview_completion_shared_legs(3, t_leaf, 4096, polled)
                .expect("idle fabric previews");
            let at_host = if polled {
                real.poll_completion_shared_legs(3, t_leaf, 4096)
            } else {
                real.deliver_completion_shared_legs(3, t_leaf, 4096)
            };
            assert_eq!(r.at_host, at_host, "preview must predict the real path");
            fused.commit_completion_shared_legs(&r);
            assert_eq!(real.stats(), fused.stats());
            assert_eq!(
                real.shared_leg_free_at(r.leaf, r.spine),
                fused.shared_leg_free_at(r.leaf, r.spine)
            );
            // The just-committed window makes the legs busy, so a
            // second preview at the same instant must decline.
            assert!(fused
                .preview_completion_shared_legs(3, t_leaf, 4096, polled)
                .is_none());
        }
    }

    #[test]
    fn uplink_contention_serializes() {
        let mut f = PcieFabric::paper_single_host(64);
        // Fire 64 completions at the same instant; the shared x16
        // uplink must serialize them.
        let mut arrivals: Vec<SimTime> = (0..64)
            .map(|d| f.deliver_completion(d, SimTime::ZERO, 4096))
            .collect();
        arrivals.sort_unstable();
        let first = arrivals[0].as_micros_f64();
        let last = arrivals[63].as_micros_f64();
        // 64 * 4KiB on a ~15.75 GB/s uplink ≈ 16.6 µs of serialization.
        assert!(
            last - first > 10.0,
            "uplink did not serialize: {first}..{last}"
        );
    }

    #[test]
    fn different_hosts_do_not_contend() {
        let mut f = PcieFabric::paper_enclosure(244);
        // Device 0 (host 0) and a device on host 2.
        let d2 = (0..244)
            .find(|&d| f.assignment(d).spine == 2)
            .expect("host-2 device");
        let a = f.deliver_completion(0, SimTime::ZERO, 4096);
        let b = f.deliver_completion(d2, SimTime::ZERO, 4096);
        // Same leaf-level path shape → near-identical unloaded latency.
        let delta = (a.as_micros_f64() - b.as_micros_f64()).abs();
        assert!(delta < 0.5, "cross-host interference {delta} us");
    }
}
