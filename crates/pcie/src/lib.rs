//! PCIe Gen3 switch-fabric model for the AFA reproduction.
//!
//! Models the paper's §III-A fabric: an OCP 2OU enclosure with seven
//! 96-lane/24-port PCIe Gen3 switches in a two-level tree, 61 device
//! slots (M.2 carrier cards, four NVMe SSDs each) and three Gen3 x16
//! uplinks, each statically assigned a partition of the slots and
//! capable of 16 GB/s to one host (Fig. 1, Fig. 2, Fig. 4).
//!
//! Every link is a "next-free-time" resource: a transfer reserves the
//! link for its serialization time and arrives after propagation and
//! per-switch hop latency. The ~5 µs fabric delta the paper quotes
//! (25 µs standalone read → 30 µs through the switches, §IV-A) emerges
//! from hop latencies plus 4 KiB serialization on the x4 device link.
//!
//! # Example
//!
//! ```
//! use afa_pcie::PcieFabric;
//! use afa_sim::SimTime;
//!
//! let mut fabric = PcieFabric::paper_single_host(64);
//! // Round-trip command + 4 KiB completion costs ~4-6 µs unloaded.
//! let at_dev = fabric.submit_command(0, SimTime::ZERO);
//! let at_host = fabric.deliver_completion(0, at_dev, 4096);
//! let us = at_host.as_micros_f64();
//! assert!(us > 3.0 && us < 7.0, "fabric round trip {us} us");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod link;
mod topology;

pub use budget::{FabricBudget, SwitchBudget, SwitchUtilization};
pub use link::{Link, LinkSpec, PcieGeneration};
pub use topology::{FabricStats, PcieFabric, SharedLegReservation, SlotAssignment};
