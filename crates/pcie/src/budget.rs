//! Switch lane/port budgets and oversubscription analysis.
//!
//! The paper's fabric uses "seven 96-lane/24-port PCIe switches in a
//! two-level tree" (Fig. 2). A 96-lane switch cannot give every one of
//! 61 x16 carrier slots dedicated bandwidth — like every dense JBOF,
//! the tree is *oversubscribed*, and the §IV-G observation that 64 QD1
//! jobs only generate 8.3 GB/s is what makes that acceptable. This
//! module checks a topology against the physical switch budgets and
//! reports the oversubscription ratios.

use crate::topology::{LEAVES, SLOTS, SPINES};

/// Lane/port capacity of one switch ASIC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchBudget {
    /// Total lanes the ASIC can switch.
    pub lanes: u32,
    /// Total ports it can expose.
    pub ports: u32,
}

impl SwitchBudget {
    /// The paper's ASIC: 96 lanes / 24 ports.
    pub fn paper_asic() -> Self {
        SwitchBudget {
            lanes: 96,
            ports: 24,
        }
    }
}

/// Per-switch utilization of the modeled topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwitchUtilization {
    /// Downstream lanes attached (devices or leaf links).
    pub down_lanes: u32,
    /// Upstream lanes attached (toward the hosts).
    pub up_lanes: u32,
    /// Ports consumed.
    pub ports: u32,
    /// Downstream-to-upstream bandwidth ratio.
    pub oversubscription: f64,
}

/// Budget analysis of the paper enclosure's two-level tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricBudget {
    /// The ASIC budget checked against.
    pub asic: SwitchBudget,
    /// Each leaf switch's utilization.
    pub leaf: SwitchUtilization,
    /// Each spine switch's utilization.
    pub spine: SwitchUtilization,
}

impl FabricBudget {
    /// Analyzes the modeled enclosure: 61 slots spread over 4 leaves,
    /// each leaf linked x8 to each of 3 spines, each spine owning one
    /// x16 host uplink.
    ///
    /// Downstream slot links are x4 in the model (one lane budget per
    /// M.2 SSD; the carrier card muxes its four SSDs onto the slot).
    pub fn paper_enclosure() -> Self {
        let asic = SwitchBudget::paper_asic();
        let slots_per_leaf = SLOTS.div_ceil(LEAVES) as u32; // 16
        let leaf = SwitchUtilization {
            down_lanes: slots_per_leaf * 4,
            up_lanes: SPINES as u32 * 8,
            ports: slots_per_leaf + SPINES as u32,
            oversubscription: (slots_per_leaf as f64 * 4.0) / (SPINES as f64 * 8.0),
        };
        let spine = SwitchUtilization {
            down_lanes: LEAVES as u32 * 8,
            up_lanes: 16,
            ports: LEAVES as u32 + 1,
            oversubscription: (LEAVES as f64 * 8.0) / 16.0,
        };
        FabricBudget { asic, leaf, spine }
    }

    /// Whether both switch classes fit the ASIC's lane and port
    /// budget.
    pub fn fits(&self) -> bool {
        let fits = |u: &SwitchUtilization| {
            u.down_lanes + u.up_lanes <= self.asic.lanes && u.ports <= self.asic.ports
        };
        fits(&self.leaf) && fits(&self.spine)
    }

    /// Renders the analysis.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Switch budget — {}-lane / {}-port ASICs (Fig. 2)\n",
            self.asic.lanes, self.asic.ports
        );
        out.push_str(&format!(
            "{:<8} {:>10} {:>10} {:>8} {:>16}\n",
            "switch", "down", "up", "ports", "oversubscription"
        ));
        for (name, u) in [("leaf", &self.leaf), ("spine", &self.spine)] {
            out.push_str(&format!(
                "{:<8} {:>7} ln {:>7} ln {:>8} {:>15.2}x\n",
                name, u.down_lanes, u.up_lanes, u.ports, u.oversubscription
            ));
        }
        out.push_str(if self.fits() {
            "fits the ASIC budget\n"
        } else {
            "EXCEEDS the ASIC budget\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_enclosure_fits_the_asic() {
        let budget = FabricBudget::paper_enclosure();
        assert!(budget.fits(), "{budget:?}");
        // Leaf: 16 slots × x4 = 64 down + 3 × x8 = 24 up = 88 ≤ 96.
        assert_eq!(budget.leaf.down_lanes, 64);
        assert_eq!(budget.leaf.up_lanes, 24);
        assert!(budget.leaf.down_lanes + budget.leaf.up_lanes <= 96);
        // Spine: 4 × x8 = 32 down + x16 up = 48 ≤ 96.
        assert_eq!(budget.spine.down_lanes + budget.spine.up_lanes, 48);
    }

    #[test]
    fn oversubscription_ratios_are_reported() {
        let budget = FabricBudget::paper_enclosure();
        // Spine: 4 leaves × x8 feeding one x16 uplink → 2:1.
        assert!((budget.spine.oversubscription - 2.0).abs() < 1e-9);
        // Leaf: 64 device lanes over 24 uplink lanes ≈ 2.67:1.
        assert!((budget.leaf.oversubscription - 64.0 / 24.0).abs() < 1e-9);
        let table = budget.to_table();
        assert!(table.contains("oversubscription"));
        assert!(table.contains("2.00x"));
    }

    #[test]
    fn an_overcommitted_design_is_flagged() {
        let mut budget = FabricBudget::paper_enclosure();
        budget.asic = SwitchBudget {
            lanes: 32,
            ports: 8,
        };
        assert!(!budget.fits());
        assert!(budget.to_table().contains("EXCEEDS"));
    }
}
