//! Point-to-point PCIe link model.

use afa_sim::{SimDuration, SimTime};

/// PCIe signaling generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PcieGeneration {
    /// 2.5 GT/s, 8b/10b encoding.
    Gen1,
    /// 5.0 GT/s, 8b/10b encoding.
    Gen2,
    /// 8.0 GT/s, 128b/130b encoding — the paper's fabric.
    Gen3,
    /// 16.0 GT/s, 128b/130b encoding.
    Gen4,
}

impl PcieGeneration {
    /// Raw signaling rate in gigatransfers per second.
    pub fn gigatransfers(self) -> f64 {
        match self {
            PcieGeneration::Gen1 => 2.5,
            PcieGeneration::Gen2 => 5.0,
            PcieGeneration::Gen3 => 8.0,
            PcieGeneration::Gen4 => 16.0,
        }
    }

    /// Line-encoding efficiency.
    pub fn encoding_efficiency(self) -> f64 {
        match self {
            PcieGeneration::Gen1 | PcieGeneration::Gen2 => 8.0 / 10.0,
            PcieGeneration::Gen3 | PcieGeneration::Gen4 => 128.0 / 130.0,
        }
    }

    /// Usable payload bandwidth per lane in bytes/second (after line
    /// encoding; TLP framing overhead is folded into hop latency).
    pub fn bytes_per_sec_per_lane(self) -> f64 {
        self.gigatransfers() * 1e9 * self.encoding_efficiency() / 8.0
    }
}

/// Width and speed of one link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkSpec {
    /// Signaling generation.
    pub gen: PcieGeneration,
    /// Lane count (x1, x4, x16, …).
    pub lanes: u32,
}

impl LinkSpec {
    /// A Gen3 x4 link — each NVMe SSD's interface (Table I).
    pub fn gen3_x4() -> Self {
        LinkSpec {
            gen: PcieGeneration::Gen3,
            lanes: 4,
        }
    }

    /// A Gen3 x8 link — the leaf→spine inter-switch links (sized so
    /// the two-level tree fits the 96-lane ASICs of Fig. 2).
    pub fn gen3_x8() -> Self {
        LinkSpec {
            gen: PcieGeneration::Gen3,
            lanes: 8,
        }
    }

    /// A Gen3 x16 link — the host uplinks ("capable of delivering
    /// 16 GB/s raw throughput", §III-A).
    pub fn gen3_x16() -> Self {
        LinkSpec {
            gen: PcieGeneration::Gen3,
            lanes: 16,
        }
    }

    /// Usable bandwidth in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.gen.bytes_per_sec_per_lane() * self.lanes as f64
    }

    /// Serialization time for a payload of `bytes`.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec())
    }
}

/// One directed link with occupancy and accounting.
///
/// # Example
///
/// ```
/// use afa_pcie::{Link, LinkSpec};
/// use afa_sim::{SimDuration, SimTime};
///
/// let mut link = Link::new(LinkSpec::gen3_x4(), SimDuration::nanos(100));
/// let arrival = link.reserve(SimTime::ZERO, 4096);
/// // ~1.04 us serialization + 100 ns propagation.
/// assert!(arrival.as_micros_f64() > 1.0 && arrival.as_micros_f64() < 1.3);
/// ```
#[derive(Clone, Debug)]
pub struct Link {
    spec: LinkSpec,
    propagation: SimDuration,
    free_at: SimTime,
    bytes_carried: u64,
    transfers: u64,
}

impl Link {
    /// Creates an idle link.
    pub fn new(spec: LinkSpec, propagation: SimDuration) -> Self {
        Link {
            spec,
            propagation,
            free_at: SimTime::ZERO,
            bytes_carried: 0,
            transfers: 0,
        }
    }

    /// The link's width/speed.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Reserves the link for a transfer of `bytes` starting no earlier
    /// than `now`; returns the arrival time at the far end.
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.free_at);
        let ser = self.spec.serialization(bytes);
        self.free_at = start + ser;
        self.bytes_carried += bytes;
        self.transfers += 1;
        self.free_at + self.propagation
    }

    /// Commits a transfer whose busy window was already validated
    /// against this link (see `PcieFabric::preview_completion_shared_legs`):
    /// advances `free_at` to at least `busy_end` and books the
    /// accounting, without re-running the [`reserve`](Self::reserve)
    /// queueing rule. The max-ratchet makes out-of-order commits of
    /// *disjoint* validated windows exact — each window's end is the
    /// `free_at` the link would have had after serving it in time
    /// order.
    pub fn commit(&mut self, busy_end: SimTime, bytes: u64) {
        self.free_at = self.free_at.max(busy_end);
        self.bytes_carried += bytes;
        self.transfers += 1;
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total transfers carried.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// When the link next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_lane_bandwidth_is_about_985_mbps() {
        let bps = PcieGeneration::Gen3.bytes_per_sec_per_lane();
        assert!((bps / 1e6 - 984.6).abs() < 1.0, "{bps}");
    }

    #[test]
    fn x16_uplink_is_about_16_gbps() {
        let bps = LinkSpec::gen3_x16().bytes_per_sec();
        assert!((15.5e9..16.1e9).contains(&bps), "{bps}");
    }

    #[test]
    fn x4_serializes_4k_in_about_a_microsecond() {
        let ser = LinkSpec::gen3_x4().serialization(4096);
        let us = ser.as_micros_f64();
        assert!((0.9..1.2).contains(&us), "{us}");
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut link = Link::new(LinkSpec::gen3_x4(), SimDuration::ZERO);
        let first = link.reserve(SimTime::ZERO, 4096);
        let second = link.reserve(SimTime::ZERO, 4096);
        assert!(second > first);
        let delta = (second - first).as_micros_f64();
        let ser = LinkSpec::gen3_x4().serialization(4096).as_micros_f64();
        assert!((delta - ser).abs() < 1e-6, "delta {delta} vs ser {ser}");
    }

    #[test]
    fn accounting_tracks_bytes_and_transfers() {
        let mut link = Link::new(LinkSpec::gen3_x16(), SimDuration::nanos(50));
        link.reserve(SimTime::ZERO, 100);
        link.reserve(SimTime::ZERO, 200);
        assert_eq!(link.bytes_carried(), 300);
        assert_eq!(link.transfers(), 2);
    }

    #[test]
    fn generations_are_ordered_by_speed() {
        let gens = [
            PcieGeneration::Gen1,
            PcieGeneration::Gen2,
            PcieGeneration::Gen3,
            PcieGeneration::Gen4,
        ];
        for w in gens.windows(2) {
            assert!(w[0].bytes_per_sec_per_lane() < w[1].bytes_per_sec_per_lane());
        }
    }

    #[test]
    fn zero_byte_transfer_costs_only_propagation() {
        let mut link = Link::new(LinkSpec::gen3_x4(), SimDuration::nanos(100));
        let arrival = link.reserve(SimTime::ZERO, 0);
        assert_eq!(arrival.as_nanos(), 100);
    }
}
