//! Regenerates every table and figure of the paper's evaluation.
//!
//! Run with `cargo bench -p afa-bench --bench figures`. Honours
//! `AFA_SECONDS` / `AFA_SSDS` / `AFA_SEED` / `AFA_FULL=1`; pass a
//! substring filter as the first CLI argument to run a subset, e.g.
//! `cargo bench -p afa-bench --bench figures -- fig12`.

use afa_bench::banner;
use afa_core::calibration::PAPER;
use afa_core::experiment::{
    ablate_coalescing, ablate_cstate, ablate_gc, ablate_numa, ablate_poll, ablate_rcu,
    ablate_smart_period, ablate_tick, fig10, fig11, fig12, fig13_and_14, fig6, fig7, fig8, fig9,
    future_schedulers, multi_host_isolation, pts_random_write, qd_sweep, render_fig14, root_cause,
    table1, table2, tail_at_scale, uplink_saturation, ExperimentScale,
};
use afa_core::TuningStage;

fn wants(filter: &Option<String>, name: &str) -> bool {
    filter.as_ref().is_none_or(|f| name.contains(f.as_str()))
}

fn main() {
    // Cargo's bench runner passes flags like `--bench`; take the first
    // non-flag argument as the filter.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let scale = ExperimentScale::from_env();
    let t0 = std::time::Instant::now();

    if wants(&filter, "table1") {
        banner("Table I", scale);
        println!("{}", table1(scale.seed).to_table());
    }
    if wants(&filter, "table2") {
        banner("Table II", scale);
        println!("{}", table2());
    }
    if wants(&filter, "fig06") {
        banner("Fig. 6 (default configuration)", scale);
        let fig = fig6(scale);
        println!("{}", fig.to_table());
        println!(
            "paper: worst-case ~{:.0} us; measured worst {:.0} us\n",
            PAPER.default_max_us,
            fig.worst_max_us()
        );
    }
    if wants(&filter, "fig07") {
        banner("Fig. 7 (+chrt -f 99)", scale);
        let fig = fig7(scale);
        println!("{}", fig.to_table());
        println!(
            "paper: worst-case ~{:.0} us; measured worst {:.0} us\n",
            PAPER.chrt_max_us,
            fig.worst_max_us()
        );
    }
    if wants(&filter, "fig08") {
        banner("Fig. 8 (+isolcpus/nohz_full/rcu_nocbs/idle=poll)", scale);
        println!("{}", fig8(scale).to_table());
    }
    if wants(&filter, "fig09") {
        banner("Fig. 9 (+IRQ affinity pinned)", scale);
        println!("{}", fig9(scale).to_table());
    }
    if wants(&filter, "fig10") {
        banner("Fig. 10 (latency scatter, 32 SSDs)", scale);
        println!("{}", fig10(scale).to_table());
    }
    if wants(&filter, "fig11") {
        banner("Fig. 11 (experimental firmware, SMART off)", scale);
        let fig = fig11(scale);
        println!("{}", fig.to_table());
        println!(
            "paper: worst-case ~{:.0} us; measured worst {:.0} us\n",
            PAPER.exp_firmware_max_us,
            fig.worst_max_us()
        );
    }
    if wants(&filter, "fig12") {
        banner("Fig. 12 (four kernel configurations)", scale);
        println!("{}", fig12(scale).to_table());
    }
    if wants(&filter, "fig13") || wants(&filter, "fig14") {
        banner("Fig. 13 + Fig. 14 (SSDs per physical core)", scale);
        let (fig13_results, fig14_summaries) = fig13_and_14(scale);
        println!("{}", fig13_results.to_table());
        println!("{}", render_fig14(&fig14_summaries));
    }
    if wants(&filter, "ablate") {
        banner("Ablations", scale);
        println!("{}", ablate_tick(scale).to_table());
        println!("{}", ablate_cstate(scale).to_table());
        println!("{}", ablate_smart_period(scale).to_table());
        println!("{}", ablate_poll(scale).to_table());
        println!("{}", ablate_numa(scale).to_table());
        println!("{}", ablate_rcu(scale).to_table());
        println!("{}", ablate_coalescing(scale).to_table());
        println!("{}", ablate_gc(scale.seed).to_table());
    }
    if wants(&filter, "tailscale") {
        banner("Tail at scale (striped volume, §I motivation)", scale);
        println!("{}", tail_at_scale(scale).to_table());
    }
    if wants(&filter, "saturation") {
        banner("Uplink saturation check (§III-B / §IV-G)", scale);
        println!("{}", uplink_saturation(scale).to_table());
    }
    if wants(&filter, "pts") {
        banner("SNIA PTS-E steady-state procedure", scale);
        println!("{}", pts_random_write(scale.seed, 30).to_table());
    }
    if wants(&filter, "qdsweep") {
        banner("Queue-depth sweep", scale);
        println!("{}", qd_sweep(scale.seed).to_table());
    }
    if wants(&filter, "multihost") {
        banner("Multi-host enclosure isolation (§III-A)", scale);
        println!("{}", multi_host_isolation(scale).to_table());
    }
    if wants(&filter, "futurework") {
        banner("§VI future-work prototypes", scale);
        println!("{}", future_schedulers(scale).to_table());
    }
    if wants(&filter, "rootcause") {
        banner("Root-cause latency budgets", scale);
        for stage in [TuningStage::Default, TuningStage::IrqAffinity] {
            println!("{}", root_cause(stage, scale).to_table());
        }
    }

    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
