//! Regenerates every artifact in the experiment registry.
//!
//! Run with `cargo bench -p afa-bench --bench figures`. Honours
//! `AFA_SECONDS` / `AFA_SSDS` / `AFA_SEED` / `AFA_FULL=1`; pass a
//! substring filter as the first CLI argument to run a subset, e.g.
//! `cargo bench -p afa-bench --bench figures -- fig12`.

use afa_bench::banner;
use afa_core::experiment::{registry, run_experiment, ExperimentScale};

fn main() {
    // Cargo's bench runner passes flags like `--bench`; take the first
    // non-flag argument as the filter.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    let scale = ExperimentScale::from_env();
    let t0 = std::time::Instant::now();

    let mut ran = 0usize;
    for def in registry() {
        if filter
            .as_ref()
            .is_some_and(|f| !def.name.contains(f.as_str()))
        {
            continue;
        }
        banner(&format!("{} — {}", def.name, def.description), scale);
        let run = run_experiment(def, scale);
        println!("{}", run.result.to_table());
        println!("{}", run.manifest.to_table());
        ran += 1;
    }

    if ran == 0 {
        if let Some(f) = &filter {
            eprintln!("filter '{f}' matched no registered experiment; known names:");
            for def in registry() {
                eprintln!("  {}", def.name);
            }
            std::process::exit(1);
        }
    }
    println!(
        "regenerated {ran} artifact(s) in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
