//! Criterion micro-benchmarks of the substrate hot paths.
//!
//! The whole-array simulation's throughput is set by: histogram
//! recording (once per I/O), event-queue churn (once per I/O),
//! device-command reservation (once per I/O), the RNG, and the
//! scheduler wake path. These benches keep those paths honest.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use afa_host::{BackgroundConfig, CpuId, CpuTopology, HostModel, KernelConfig, SchedPolicy};
use afa_sim::{EventQueue, SimDuration, SimRng, SimTime};
use afa_ssd::{FirmwareProfile, NvmeCommand, SsdDevice, SsdSpec};
use afa_stats::LatencyHistogram;

fn bench_histogram(c: &mut Criterion) {
    let mut h = LatencyHistogram::new();
    let mut x = 12345u64;
    c.bench_function("histogram_record", |b| {
        b.iter(|| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            h.record(black_box(20_000 + (x >> 40)));
        })
    });
    for v in 0..1_000_000u64 {
        h.record(25_000 + v % 10_000);
    }
    c.bench_function("histogram_percentile", |b| {
        b.iter(|| black_box(h.value_at_percentile(black_box(99.999))))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(1024);
        let mut t = 0u64;
        for i in 0..512 {
            q.push(SimTime::from_nanos(i * 1000), i);
        }
        b.iter(|| {
            t += 997;
            q.push(SimTime::from_nanos(black_box(t)), t);
            black_box(q.pop());
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = SimRng::from_seed(7);
    c.bench_function("rng_next_u64", |b| b.iter(|| black_box(rng.next_u64())));
    c.bench_function("rng_exponential", |b| {
        b.iter(|| black_box(rng.exponential(black_box(30.0))))
    });
}

fn bench_device(c: &mut Criterion) {
    let mut dev = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), 3);
    let mut now = SimTime::ZERO;
    let mut lba = 0u64;
    c.bench_function("ssd_submit_read_4k", |b| {
        b.iter(|| {
            lba = (lba + 7_919) % 1_000_000;
            let info = dev.submit(now, NvmeCommand::read(black_box(lba), 4096));
            now = info.completes_at + SimDuration::micros(5);
            black_box(info);
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let mut host = HostModel::new(
        CpuTopology::xeon_e5_2690_v2_dual(),
        KernelConfig::stock(),
        BackgroundConfig::centos7_desktop(),
        11,
    );
    host.init_vectors((0..64u16).map(|d| CpuId(4 + d % 32)).collect(), 11);
    let mut now = SimTime::ZERO;
    let mut d = 0usize;
    c.bench_function("host_irq_wake_charge", |b| {
        b.iter(|| {
            d = (d + 1) % 64;
            let out = host.deliver_irq(d, now);
            let cpu = CpuId(4 + (d % 32) as u16);
            let (start, _) = host.wake_io_task(cpu, out.wake_ready, SchedPolicy::chrt_fifo_99());
            let end = host.charge_cpu(cpu, start, SimDuration::nanos(1_300));
            now = now + SimDuration::nanos(520);
            black_box(end);
        })
    });
}

criterion_group!(
    benches,
    bench_histogram,
    bench_event_queue,
    bench_rng,
    bench_device,
    bench_scheduler
);
criterion_main!(benches);
