//! Micro-benchmarks of the substrate hot paths (stdlib harness).
//!
//! The whole-array simulation's throughput is set by: histogram
//! recording (once per I/O), event-queue churn (once per I/O),
//! device-command reservation (once per I/O), the RNG, and the
//! scheduler wake path. These benches keep those paths honest.
//!
//! Run with `cargo bench -p afa-bench --bench micro`; pass a substring
//! filter as the first CLI argument to run a subset, e.g.
//! `cargo bench -p afa-bench --bench micro -- rng`.

use std::hint::black_box;

use afa_bench::micro::Harness;
use afa_host::{BackgroundConfig, CpuId, CpuTopology, HostModel, KernelConfig, SchedPolicy};
use afa_sim::{EventQueue, SimDuration, SimRng, SimTime};
use afa_ssd::{FirmwareProfile, NvmeCommand, SsdDevice, SsdSpec};
use afa_stats::LatencyHistogram;

fn bench_histogram(harness: &mut Harness) {
    afa_bench::micro::register_histogram_record(harness);
    let mut h = LatencyHistogram::new();
    for v in 0..1_000_000u64 {
        h.record(25_000 + v % 10_000);
    }
    harness.bench("histogram_percentile", || {
        black_box(h.value_at_percentile(black_box(99.999)));
    });
}

fn bench_event_queue(harness: &mut Harness) {
    let mut q: EventQueue<u64> = EventQueue::with_capacity(1024);
    let mut t = 0u64;
    for i in 0..512 {
        q.push(SimTime::from_nanos(i * 1000), i);
    }
    harness.bench("event_queue_push_pop", || {
        t += 997;
        q.push(SimTime::from_nanos(black_box(t)), t);
        black_box(q.pop());
    });
    // Steady-state churn at fixed occupancy (shared with `desperf` so
    // the trajectory file measures the identical workload).
    afa_bench::micro::register_queue_churn(harness);
}

fn bench_rng(harness: &mut Harness) {
    let mut rng = SimRng::from_seed(7);
    harness.bench("rng_next_u64", || {
        black_box(rng.next_u64());
    });
    harness.bench("rng_exponential", || {
        black_box(rng.exponential(black_box(30.0)));
    });
}

fn bench_device(harness: &mut Harness) {
    let mut dev = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), 3);
    let mut now = SimTime::ZERO;
    let mut lba = 0u64;
    harness.bench("ssd_submit_read_4k", || {
        lba = (lba + 7_919) % 1_000_000;
        let info = dev.submit(now, NvmeCommand::read(black_box(lba), 4096));
        now = info.completes_at + SimDuration::micros(5);
        black_box(info);
    });
}

fn bench_scheduler(harness: &mut Harness) {
    let mut host = HostModel::new(
        CpuTopology::xeon_e5_2690_v2_dual(),
        KernelConfig::stock(),
        BackgroundConfig::centos7_desktop(),
        11,
    );
    host.init_vectors((0..64u16).map(|d| CpuId(4 + d % 32)).collect(), 11);
    let mut now = SimTime::ZERO;
    let mut d = 0usize;
    harness.bench("host_irq_wake_charge", || {
        d = (d + 1) % 64;
        let out = host.deliver_irq(d, now);
        let cpu = CpuId(4 + (d % 32) as u16);
        let (start, _) = host.wake_io_task(cpu, out.wake_ready, SchedPolicy::chrt_fifo_99());
        let end = host.charge_cpu(cpu, start, SimDuration::nanos(1_300));
        now += SimDuration::nanos(520);
        black_box(end);
    });
}

fn bench_frontend(harness: &mut Harness) {
    // Full 64-wide request bookkeeping (stripe map + book + 64 sub
    // completions) — the per-request frontend cost in the tail-at-scale
    // experiments.
    afa_bench::micro::register_frontend_fanout(harness);
}

fn main() {
    let mut harness = Harness::from_args();
    bench_histogram(&mut harness);
    bench_event_queue(&mut harness);
    bench_rng(&mut harness);
    bench_device(&mut harness);
    bench_scheduler(&mut harness);
    bench_frontend(&mut harness);
    harness.report();
}
