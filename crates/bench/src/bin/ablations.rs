//! Runs every `DESIGN.md` ablation registered in the experiment
//! registry: tick rate, C-states, SMART housekeeping, interrupt vs.
//! polling, coalescing, rcu_nocbs, NUMA placement, and GC on aged
//! devices.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_many(&[
        "ablate-tick",
        "ablate-cstate",
        "ablate-smart-period",
        "ablate-poll",
        "ablate-coalescing",
        "ablate-rcu",
        "ablate-numa",
        "ablate-gc",
    ])
}
