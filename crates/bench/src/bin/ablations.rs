//! Runs the `DESIGN.md` ablations: tick rate, C-states, housekeeping
//! protocol, interrupt-vs-polling, and GC on aged devices.

use afa_bench::{banner, ExperimentScale};
use afa_core::experiment::{
    ablate_coalescing, ablate_cstate, ablate_gc, ablate_numa, ablate_poll, ablate_rcu,
    ablate_smart_period, ablate_tick,
};

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Ablations", scale);
    println!("{}", ablate_tick(scale).to_table());
    println!("{}", ablate_cstate(scale).to_table());
    println!("{}", ablate_smart_period(scale).to_table());
    println!("{}", ablate_poll(scale).to_table());
    println!("{}", ablate_numa(scale).to_table());
    println!("{}", ablate_rcu(scale).to_table());
    println!("{}", ablate_coalescing(scale).to_table());
    println!("{}", ablate_gc(scale.seed).to_table());
}
