//! DES-throughput trajectory: appends one measurement entry to
//! `BENCH_desperf.json` at the repo root.
//!
//! Each entry captures the substrate hot-path micro-benches
//! (`queue_push_pop_1k`, `queue_push_pop_64k`, `histogram_record`,
//! `frontend_fanout_64` — the exact same bodies
//! `cargo bench --bench micro` runs) plus three pinned end-to-end
//! runs: fig06 (10 s × 64 SSDs, seed 42), the request-serving
//! tailscale-fanout sweep (0.5 s × 16 SSDs, seed 42), the
//! fleet-arrival tenant ladder (1 s × 8 SSDs, seed 42 — the
//! million-tenant rung plus its peak slab footprint, the serving
//! path's RSS proxy), the fleet-failover replicated-fleet grid
//! (0.25 s × 8 SSDs, seed 42 — 5 kill/failover runs, so the network
//! hop and re-replication paths stay in the trajectory), and the
//! ull-crossover completion-model grid
//! (0.25 s × 8 SSDs, seed 42 — 30 runs spanning both device profiles
//! and all three completion models, so the polled reap path stays in
//! the trajectory), and the event-fusion probe (fig06 at 10 s ×
//! 8 SSDs, seed 42, single-shard plan — one job per worker LP so the
//! macro-event fast path engages; records events/sec, events per
//! latency sample, and fused/defused chain counts), each with its
//! wall-clock and events/sec, plus a threads-scaling sweep of the
//! pinned fig06 run at 1/2/4/8 engine workers (recorded alongside the
//! host's core count, since scaling numbers are meaningless without
//! it). Because the scales are pinned, entries are comparable across
//! commits: the file is the perf trajectory of the event queue,
//! histogram, serving layer and parallel engine over the repo's
//! history.
//!
//! Usage:
//!
//! ```text
//! AFA_BENCH_LABEL=timing-wheel cargo run --release -p afa-bench --bin desperf
//! ```
//!
//! `desperf --check` is the CI regression gate: it skips the
//! micro-benches, re-measures the pinned fig06 run, and exits non-zero
//! if events/sec fell more than 20% below the most recent committed
//! entry (nothing is appended). It also re-measures the fleet ladder
//! and gates its events/sec (80% floor), its peak slab bytes
//! (110% ceiling) and its 1M/10k rate ratio ([0.8, 1.2] band), plus
//! the fleet-failover grid's and the ull-crossover grid's events/sec
//! (80% floors), plus the event-fusion probe (events/sample budget of
//! 4.0, 80% events/sec floor, and ≥ 1.15× the fleet-failover grid's
//! same-host events/sec), each skipping gracefully when the committed
//! trajectory predates its keys. On hosts with enough cores it also
//! gates the threads-scaling table: threads must *pay* — a 2- or
//! 4-thread run slower than 95% of the sequential run fails the gate
//! (on smaller hosts the partition planner fuses everything into the
//! sequential fast path, so the gate is vacuous and says so).

use std::time::Instant;

use afa_bench::micro::{self, Harness};
use afa_core::experiment::{self, Experiment, ExperimentScale};
use afa_sim::SimDuration;
use afa_stats::Json;

/// The pinned end-to-end scale; changing it breaks trajectory
/// comparability, so don't.
fn trajectory_scale() -> ExperimentScale {
    ExperimentScale::new(SimDuration::from_secs_f64(10.0), 64, 42)
}

/// The pinned request-serving scale (tailscale-fanout: 5 stages × a
/// width sweep per entry); same comparability rule as
/// [`trajectory_scale`].
fn frontend_scale() -> ExperimentScale {
    ExperimentScale::new(SimDuration::from_secs_f64(0.5), 16, 42)
}

/// The pinned fleet-serving scale: 1 s keeps the tenant ladder's full
/// 10³ → 10⁶ climb in the trajectory, so the 1M rung is exercised on
/// every measurement. Same comparability rule as [`trajectory_scale`].
fn fleet_scale() -> ExperimentScale {
    ExperimentScale::new(SimDuration::from_secs_f64(1.0), 8, 42)
}

/// Runs the pinned fleet-arrival ladder once; returns
/// `(events_per_sec, peak_slab_bytes, rate_ratio_1m_vs_10k)`. The
/// slab bytes are the serving path's peak-RSS proxy; the rate ratio
/// compares the 1M rung's per-rung events/sec against the 10k rung's
/// (flat-memory serving should hold it near 1.0).
fn run_fleet_ladder() -> (f64, u64, f64) {
    let scale = fleet_scale();
    println!(
        "fleet-arrival ladder at {:.1}s x {} SSDs, seed {} ...",
        scale.runtime.as_secs_f64(),
        scale.ssds,
        scale.seed
    );
    // Three passes: best-of for throughput and for each rung of the
    // ratio. The whole ladder finishes in a fraction of a second, and
    // a single pass on a shared host picks up enough scheduler/cache
    // noise to swing a per-pass 1M/10k quotient by ±30 %. Taking the
    // median of per-pass ratios (the old estimator) still swung
    // 0.98–1.23 because one noisy rung poisons its whole pass; taking
    // best-of-3 for the numerator and denominator *jointly sampled
    // from the same passes* filters the one-sided scheduler noise out
    // of each rung independently, and the surviving quotient compares
    // the two rungs' steady-state rates.
    let mut events_per_sec = 0.0f64;
    let mut peak_slab_bytes = 0u64;
    let mut best_1m = 0.0f64;
    let mut best_10k = 0.0f64;
    for _ in 0..3 {
        let events_before = afa_sim::metrics::events_processed_total();
        let t0 = Instant::now();
        let result = experiment::fleet_arrival(scale);
        let wall = t0.elapsed().as_secs_f64();
        let events = afa_sim::metrics::events_processed_total() - events_before;
        events_per_sec = events_per_sec.max(events as f64 / wall.max(1e-9));
        peak_slab_bytes = result
            .cells
            .iter()
            .map(|c| c.slab_footprint_bytes)
            .max()
            .unwrap_or(0);
        let rung_rate = |tenants: u64| {
            result
                .cell(tenants)
                .map(|c| c.sim_events as f64 / c.wall.as_secs_f64().max(1e-9))
        };
        if let Some(big) = rung_rate(1_000_000) {
            best_1m = best_1m.max(big);
        }
        if let Some(small) = rung_rate(10_000) {
            best_10k = best_10k.max(small);
        }
    }
    let rate_ratio = if best_10k > 0.0 {
        best_1m / best_10k
    } else {
        1.0
    };
    println!(
        "fleet-arrival: best of 3 passes, {events_per_sec:.0} events/sec, \
         {peak_slab_bytes} peak slab bytes, 1M/10k rate ratio {rate_ratio:.2} (best-of-3 rungs)"
    );
    (events_per_sec, peak_slab_bytes, rate_ratio)
}

/// The pinned completion-model scale: the full ull-crossover grid (2
/// device profiles × 5 tuning stages × 3 completion models) in a
/// fraction of a second, so the polled and hybrid reap paths are
/// measured on every trajectory entry. Same comparability rule as
/// [`trajectory_scale`].
fn ull_scale() -> ExperimentScale {
    ExperimentScale::new(SimDuration::from_secs_f64(0.25), 8, 42)
}

/// The pinned replicated-fleet scale: the 5-stage fleet-failover grid
/// (kill one array at t=50%, failover + re-replication) at 2 s sim
/// time, so each pass does enough network-hop and failover work for a
/// stable events/sec on a noisy shared host. Same comparability rule
/// as [`trajectory_scale`].
fn fleet_failover_scale() -> ExperimentScale {
    ExperimentScale::new(SimDuration::from_secs_f64(2.0), 8, 42)
}

/// Runs the pinned fleet-failover grid; returns best-of-3 events/sec.
/// Three passes for the same reason as [`run_fleet_ladder`]: short
/// runs amplify per-run scheduler noise on a shared host.
fn run_fleet_failover() -> f64 {
    let def = experiment::find("fleet-failover").expect("fleet-failover registered");
    let scale = fleet_failover_scale();
    println!(
        "fleet-failover grid at {:.2}s x {} SSDs, seed {} ...",
        scale.runtime.as_secs_f64(),
        scale.ssds,
        scale.seed
    );
    let mut events_per_sec = 0.0f64;
    for _ in 0..3 {
        let events_before = afa_sim::metrics::events_processed_total();
        let t0 = Instant::now();
        let result = def.run(scale);
        let wall = t0.elapsed().as_secs_f64();
        let events = afa_sim::metrics::events_processed_total() - events_before;
        events_per_sec = events_per_sec.max(events as f64 / wall.max(1e-9));
        std::hint::black_box(result.samples());
    }
    println!("fleet-failover: best of 3 passes, {events_per_sec:.0} events/sec");
    events_per_sec
}

/// Runs the pinned ull-crossover grid; returns best-of-2 events/sec.
/// Two passes because the grid's 30 short runs amplify per-run
/// scheduler noise on a shared host.
fn run_ull_crossover() -> f64 {
    let def = experiment::find("ull-crossover").expect("ull-crossover registered");
    let scale = ull_scale();
    println!(
        "ull-crossover grid at {:.2}s x {} SSDs, seed {} ...",
        scale.runtime.as_secs_f64(),
        scale.ssds,
        scale.seed
    );
    let mut events_per_sec = 0.0f64;
    for _ in 0..2 {
        let events_before = afa_sim::metrics::events_processed_total();
        let t0 = Instant::now();
        let result = def.run(scale);
        let wall = t0.elapsed().as_secs_f64();
        let events = afa_sim::metrics::events_processed_total() - events_before;
        events_per_sec = events_per_sec.max(events as f64 / wall.max(1e-9));
        std::hint::black_box(result.samples());
    }
    println!("ull-crossover: best of 2 passes, {events_per_sec:.0} events/sec");
    events_per_sec
}

/// The pinned event-fusion scale: fig06 at 10 s × 8 SSDs, seed 42 —
/// eight jobs over eight worker LPs is one job per LP, so the QD1
/// interrupt chains satisfy the fusion gates (the 64-SSD trajectory
/// scale packs 8 jobs per LP and never fuses). Same comparability
/// rule as [`trajectory_scale`].
fn event_fusion_scale() -> ExperimentScale {
    ExperimentScale::new(SimDuration::from_secs_f64(10.0), 8, 42)
}

/// One event-fusion measurement.
struct FusionMeasurement {
    events_per_sec: f64,
    /// Scheduled (popped) events per latency sample — the fig06
    /// events/io figure the fusion fast path exists to shrink: ~7
    /// per-stage events unfused, ≤ 4 with chains fused into one
    /// settlement macro-event (samples also ride on a background of
    /// non-I/O events, so the quotient never reaches the ideal).
    events_per_sample: f64,
    fused_chains: u64,
    defused_chains: u64,
}

/// Runs the pinned event-fusion probe best-of-3, pinned to the
/// single-shard plan (fusion only engages when one shard owns every
/// LP, and the measurement must not depend on the host's core count).
/// Three passes for the same reason as [`run_fleet_ladder`]: the
/// probe's ~1.5 s wall is short enough that one descheduling swings
/// its events/sec by ±10% on a shared host, and this figure feeds a
/// relative gate (≥ 1.15× the failover grid). The event, sample and
/// fusion-counter totals are deterministic across passes.
fn run_event_fusion() -> FusionMeasurement {
    let def = experiment::find("fig06").expect("fig06 registered");
    let scale = event_fusion_scale();
    println!(
        "event-fusion fig06 at {:.1}s x {} SSDs, seed {} (single-shard plan, best of 3) ...",
        scale.runtime.as_secs_f64(),
        scale.ssds,
        scale.seed
    );
    let mut best_wall = f64::INFINITY;
    let mut events = 0u64;
    let mut samples = 0u64;
    let mut fusion = afa_sim::metrics::FusionCounters::default();
    for _ in 0..3 {
        let plan = afa_core::PlanOverride::set(afa_core::PlanSpec::Single);
        let events_before = afa_sim::metrics::events_processed_total();
        let fusion_before = afa_sim::metrics::fusion_totals();
        let t0 = Instant::now();
        let result = def.run(scale);
        let wall = t0.elapsed().as_secs_f64();
        drop(plan);
        best_wall = best_wall.min(wall);
        events = afa_sim::metrics::events_processed_total() - events_before;
        fusion = afa_sim::metrics::fusion_totals().since(&fusion_before);
        samples = result.samples();
    }
    let m = FusionMeasurement {
        events_per_sec: events as f64 / best_wall.max(1e-9),
        events_per_sample: events as f64 / samples.max(1) as f64,
        fused_chains: fusion.fused_chains,
        defused_chains: fusion.defused_chains,
    };
    println!(
        "event-fusion: {:.2}s wall (best of 3), {} samples, {} events ({:.2} events/sample), \
         {:.0} events/sec, {} chains fused, {} defused, {} events elided",
        best_wall,
        samples,
        events,
        m.events_per_sample,
        m.events_per_sec,
        m.fused_chains,
        m.defused_chains,
        fusion.elided_events
    );
    m
}

fn median_ns(harness: &Harness, name: &str) -> f64 {
    harness
        .results()
        .iter()
        .find(|r| r.name == name)
        .map_or(f64::NAN, |r| r.median_ns)
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");
    let label = std::env::var("AFA_BENCH_LABEL").unwrap_or_else(|_| "unlabeled".to_owned());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_desperf.json");

    if check_only {
        let baseline = match last_events_per_sec(&std::fs::read_to_string(path).unwrap_or_default())
        {
            Some(b) => b,
            None => {
                eprintln!("--check: no committed entry in {path}; run desperf once first");
                std::process::exit(1);
            }
        };
        let measured = run_trajectory_fig06().events_per_sec;
        let floor = 0.8 * baseline;
        if measured < floor {
            eprintln!(
                "desperf regression: {measured:.0} events/sec is more than 20% below \
                 the committed baseline {baseline:.0} (floor {floor:.0})"
            );
            std::process::exit(1);
        }
        println!(
            "desperf OK: {measured:.0} events/sec vs baseline {baseline:.0} \
             ({:+.1}%)",
            100.0 * (measured / baseline - 1.0)
        );
        check_threads_scaling(measured);
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        check_fleet(&existing);
        let failover_eps = check_fleet_failover(&existing);
        check_ull(&existing);
        check_event_fusion(&existing, failover_eps);
        return;
    }

    let mut harness = Harness::default();
    micro::register_queue_churn(&mut harness);
    micro::register_histogram_record(&mut harness);
    micro::register_frontend_fanout(&mut harness);

    let def = experiment::find("fig06").expect("fig06 registered");
    let scale = trajectory_scale();
    println!();
    let fig06 = run_trajectory_fig06();

    // Threads-scaling sweep over the same pinned fig06 scale: the
    // conservative engine's wall-clock at 1/2/4/8 workers. Recorded
    // with the host's core count — on a single-core container the
    // honest result is flat-to-slower (synchronization overhead, no
    // parallel speedup), which is still trajectory-worthy data.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nfig06 threads-scaling sweep ({cores} host cores) ...");
    let mut scaling = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let plan = afa_core::partition::plan_label(scale.ssds, threads);
        let pin = afa_core::ThreadsOverride::set(threads);
        let ev0 = afa_sim::metrics::events_processed_total();
        let t0 = Instant::now();
        let r = def.run(scale);
        let w = t0.elapsed().as_secs_f64();
        drop(pin);
        let ev = afa_sim::metrics::events_processed_total() - ev0;
        let eps = ev as f64 / w.max(1e-9);
        println!(
            "  {threads} threads (plan {plan}): {w:.2}s wall, {} samples, {eps:.0} events/sec",
            r.samples()
        );
        scaling.push(Json::obj([
            ("threads", Json::u64(threads as u64)),
            ("plan", Json::str(&plan)),
            ("wall_s", Json::f64(w)),
            ("events_per_sec", Json::f64(eps)),
        ]));
    }

    let fe_def = experiment::find("tailscale-fanout").expect("tailscale-fanout registered");
    let fe_scale = frontend_scale();
    println!(
        "\ntailscale-fanout end-to-end at {:.1}s x {} SSDs, seed {} ...",
        fe_scale.runtime.as_secs_f64(),
        fe_scale.ssds,
        fe_scale.seed
    );
    let fe_events_before = afa_sim::metrics::events_processed_total();
    let fe_t0 = Instant::now();
    let fe_result = fe_def.run(fe_scale);
    let fe_wall = fe_t0.elapsed().as_secs_f64();
    let fe_events = afa_sim::metrics::events_processed_total() - fe_events_before;
    let fe_events_per_sec = fe_events as f64 / fe_wall.max(1e-9);
    println!(
        "tailscale-fanout: {:.2}s wall, {} samples, {} events, {:.0} events/sec",
        fe_wall,
        fe_result.samples(),
        fe_events,
        fe_events_per_sec
    );

    println!();
    let (fleet_eps, fleet_slab_bytes, fleet_rate_ratio) = run_fleet_ladder();

    println!();
    let fleet_failover_eps = run_fleet_failover();

    println!();
    let ull_eps = run_ull_crossover();

    println!();
    let fusion = run_event_fusion();

    let entry = Json::obj([
        ("label", Json::str(&label)),
        (
            "queue_push_pop_1k_ns",
            Json::f64(median_ns(&harness, "queue_push_pop_1k")),
        ),
        (
            "queue_push_pop_64k_ns",
            Json::f64(median_ns(&harness, "queue_push_pop_64k")),
        ),
        (
            "histogram_record_ns",
            Json::f64(median_ns(&harness, "histogram_record")),
        ),
        (
            "frontend_fanout_64_ns",
            Json::f64(median_ns(&harness, "frontend_fanout_64")),
        ),
        ("fig06_wall_s", Json::f64(fig06.wall_s)),
        ("fig06_samples", Json::u64(fig06.samples)),
        ("fig06_events", Json::u64(fig06.events)),
        ("fig06_events_per_sec", Json::f64(fig06.events_per_sec)),
        ("host_cores", Json::u64(cores as u64)),
        ("fig06_threads_scaling", Json::arr(scaling)),
        ("frontend_wall_s", Json::f64(fe_wall)),
        ("frontend_samples", Json::u64(fe_result.samples())),
        ("frontend_events", Json::u64(fe_events)),
        ("frontend_events_per_sec", Json::f64(fe_events_per_sec)),
        ("fleet_events_per_sec", Json::f64(fleet_eps)),
        ("fleet_slab_peak_bytes", Json::u64(fleet_slab_bytes)),
        ("fleet_rate_ratio_1m_vs_10k", Json::f64(fleet_rate_ratio)),
        (
            "fleet_failover_events_per_sec",
            Json::f64(fleet_failover_eps),
        ),
        ("ull_crossover_events_per_sec", Json::f64(ull_eps)),
        (
            "event_fusion_events_per_sec",
            Json::f64(fusion.events_per_sec),
        ),
        (
            "event_fusion_events_per_sample",
            Json::f64(fusion.events_per_sample),
        ),
        ("event_fusion_fused_chains", Json::u64(fusion.fused_chains)),
        (
            "event_fusion_defused_chains",
            Json::u64(fusion.defused_chains),
        ),
    ]);

    let rendered = append_entry(&std::fs::read_to_string(path).unwrap_or_default(), &entry);
    match std::fs::write(path, &rendered) {
        Ok(()) => println!("\nappended '{label}' entry to {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The threads-must-pay gate: on hosts with at least N cores, an
/// N-thread run of the pinned fig06 scale must reach 95% of the
/// sequential throughput `base` — the partition planner exists
/// precisely so extra threads never make the run slower. Vacuous on
/// hosts too small for any multi-shard plan to be chosen.
fn check_threads_scaling(base: f64) {
    let def = experiment::find("fig06").expect("fig06 registered");
    let scale = trajectory_scale();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut checked = false;
    for &threads in &[2usize, 4] {
        if cores < threads {
            continue;
        }
        checked = true;
        let plan = afa_core::partition::plan_label(scale.ssds, threads);
        let pin = afa_core::ThreadsOverride::set(threads);
        let ev0 = afa_sim::metrics::events_processed_total();
        let t0 = Instant::now();
        def.run(scale);
        let w = t0.elapsed().as_secs_f64();
        drop(pin);
        let ev = afa_sim::metrics::events_processed_total() - ev0;
        let eps = ev as f64 / w.max(1e-9);
        let floor = 0.95 * base;
        if eps < floor {
            eprintln!(
                "threads-scaling regression: {threads} threads (plan {plan}) ran at \
                 {eps:.0} events/sec, below 95% of the {base:.0} sequential baseline \
                 (floor {floor:.0}) — threads must pay"
            );
            std::process::exit(1);
        }
        println!(
            "threads-scaling OK: {threads} threads (plan {plan}) at {eps:.0} events/sec \
             ({:+.1}% vs sequential)",
            100.0 * (eps / base - 1.0)
        );
    }
    if !checked {
        println!(
            "threads-scaling gate: skipped ({cores} host core(s) — no multi-thread run to gate)"
        );
    }
}

/// One pinned-scale fig06 trajectory measurement.
struct Fig06Measurement {
    wall_s: f64,
    samples: u64,
    events: u64,
    events_per_sec: f64,
}

/// Runs the pinned-scale fig06 trajectory best-of-3 and returns the
/// fastest pass. Three passes for the same reason as
/// [`run_fleet_ladder`]: a single ~11 s pass on a 1-core shared host
/// picks up enough scheduler noise to swing events/sec ±10%, which is
/// the entire width of the regression band; taking the fastest pass
/// filters the one-sided noise out of both the appended baseline and
/// the `--check` re-measurement, so the gate compares steady-state
/// rates. The samples/events counts are deterministic across passes.
fn run_trajectory_fig06() -> Fig06Measurement {
    let def = experiment::find("fig06").expect("fig06 registered");
    let scale = trajectory_scale();
    println!(
        "fig06 end-to-end at {:.1}s x {} SSDs, seed {} (best of 3) ...",
        scale.runtime.as_secs_f64(),
        scale.ssds,
        scale.seed
    );
    let mut best = Fig06Measurement {
        wall_s: f64::INFINITY,
        samples: 0,
        events: 0,
        events_per_sec: 0.0,
    };
    for _ in 0..3 {
        let events_before = afa_sim::metrics::events_processed_total();
        let t0 = Instant::now();
        let result = def.run(scale);
        let wall = t0.elapsed().as_secs_f64();
        let events = afa_sim::metrics::events_processed_total() - events_before;
        let events_per_sec = events as f64 / wall.max(1e-9);
        if events_per_sec > best.events_per_sec {
            best = Fig06Measurement {
                wall_s: wall,
                samples: result.samples(),
                events,
                events_per_sec,
            };
        }
    }
    println!(
        "fig06: {:.2}s wall, {} samples, {} events, {:.0} events/sec (best of 3 passes)",
        best.wall_s, best.samples, best.events, best.events_per_sec
    );
    best
}

/// The fleet gate: events/sec must hold 80% of the last committed
/// fleet measurement, the peak slab footprint (the serving path's
/// RSS proxy) must not grow more than 10%, and the 1M/10k rate ratio
/// must sit inside [0.8, 1.2] — flat-memory serving holds it near
/// 1.0, and the best-of-3-per-rung estimator is stable enough for
/// that band (the old per-pass-median estimator swung 0.98–1.23 on
/// noise alone, and a 1-core shared host still moves the best-of-3
/// quotient a few points run to run). Skipped with a note when the
/// trajectory predates the fleet keys.
fn check_fleet(existing: &str) {
    let (Some(base_eps), Some(base_bytes)) = (
        last_f64_key(existing, "\"fleet_events_per_sec\":"),
        last_f64_key(existing, "\"fleet_slab_peak_bytes\":"),
    ) else {
        println!("fleet gate: skipped (no fleet keys in the committed trajectory yet)");
        return;
    };
    let (eps, slab_bytes, rate_ratio) = run_fleet_ladder();
    if !(0.8..=1.2).contains(&rate_ratio) {
        eprintln!(
            "fleet ladder regression: 1M/10k rate ratio {rate_ratio:.2} is outside \
             [0.8, 1.2] — the million-tenant rung no longer serves at the \
             10k rung's per-event cost"
        );
        std::process::exit(1);
    }
    let eps_floor = 0.8 * base_eps;
    if eps < eps_floor {
        eprintln!(
            "fleet regression: {eps:.0} events/sec is more than 20% below the \
             committed baseline {base_eps:.0} (floor {eps_floor:.0})"
        );
        std::process::exit(1);
    }
    let bytes_ceiling = 1.1 * base_bytes;
    if slab_bytes as f64 > bytes_ceiling {
        eprintln!(
            "fleet slab regression: {slab_bytes} peak slab bytes is more than 10% above \
             the committed baseline {base_bytes:.0} (ceiling {bytes_ceiling:.0})"
        );
        std::process::exit(1);
    }
    println!(
        "fleet OK: {eps:.0} events/sec ({:+.1}% vs baseline), {slab_bytes} peak slab bytes \
         ({:+.1}% vs baseline), 1M/10k rate ratio {rate_ratio:.2}",
        100.0 * (eps / base_eps - 1.0),
        100.0 * (slab_bytes as f64 / base_bytes - 1.0)
    );
}

/// The replicated-fleet gate: the fleet-failover grid's events/sec
/// must hold 80% of the last committed measurement — it is the only
/// throughput coverage for the network-hop, failover and
/// re-replication paths. Skipped with a note when the trajectory
/// predates the key. Returns the measured events/sec so the
/// event-fusion gate can compare against a same-host figure.
fn check_fleet_failover(existing: &str) -> Option<f64> {
    let Some(base_eps) = last_f64_key(existing, "\"fleet_failover_events_per_sec\":") else {
        println!(
            "fleet-failover gate: skipped (no fleet-failover key in the committed trajectory yet)"
        );
        return None;
    };
    let eps = run_fleet_failover();
    let floor = 0.8 * base_eps;
    if eps < floor {
        eprintln!(
            "fleet-failover regression: {eps:.0} events/sec is more than 20% below the \
             committed baseline {base_eps:.0} (floor {floor:.0})"
        );
        std::process::exit(1);
    }
    println!(
        "fleet-failover OK: {eps:.0} events/sec ({:+.1}% vs baseline)",
        100.0 * (eps / base_eps - 1.0)
    );
    Some(eps)
}

/// The event-fusion gate, in three parts. (1) The event-count budget:
/// the pinned fig06 fusion probe must schedule at most 4 events per
/// latency sample — the unfused chain pays ~7, so a broken fusion
/// gate (one that silently declines everything) fails here even
/// though the artifacts stay byte-identical. (2) Throughput must hold
/// 90% of the last committed measurement, like the other entries.
/// (3) When the fleet-failover gate just measured this host, the
/// fused run must also beat that grid's events/sec by ≥ 1.15× — a
/// same-host, same-process relative floor that survives slow CI
/// machines where absolute numbers mean nothing. Skipped with a note
/// when the trajectory predates the keys.
fn check_event_fusion(existing: &str, failover_eps: Option<f64>) {
    let Some(base_eps) = last_f64_key(existing, "\"event_fusion_events_per_sec\":") else {
        println!(
            "event-fusion gate: skipped (no event-fusion key in the committed trajectory yet)"
        );
        return;
    };
    let m = run_event_fusion();
    if m.events_per_sample > 4.0 {
        eprintln!(
            "event-fusion budget regression: {:.2} events/sample exceeds the budget of 4.0 \
             — the macro-event fast path is no longer eliding the per-stage chain",
            m.events_per_sample
        );
        std::process::exit(1);
    }
    if m.fused_chains == 0 {
        eprintln!(
            "event-fusion regression: the pinned fig06 probe fused no chains — every \
             submit declined the fast path"
        );
        std::process::exit(1);
    }
    let floor = 0.8 * base_eps;
    if m.events_per_sec < floor {
        eprintln!(
            "event-fusion regression: {:.0} events/sec is more than 20% below the \
             committed baseline {base_eps:.0} (floor {floor:.0})",
            m.events_per_sec
        );
        std::process::exit(1);
    }
    if let Some(failover) = failover_eps {
        let rel_floor = 1.15 * failover;
        if m.events_per_sec < rel_floor {
            eprintln!(
                "event-fusion regression: {:.0} events/sec does not clear 1.15x the \
                 fleet-failover grid's {failover:.0} measured on this host (floor \
                 {rel_floor:.0}) — fused settlement should beat the unfused multi-hop grid",
                m.events_per_sec
            );
            std::process::exit(1);
        }
    }
    println!(
        "event-fusion OK: {:.0} events/sec ({:+.1}% vs baseline), {:.2} events/sample \
         (budget 4.0), {} chains fused, {} defused",
        m.events_per_sec,
        100.0 * (m.events_per_sec / base_eps - 1.0),
        m.events_per_sample,
        m.fused_chains,
        m.defused_chains
    );
}

/// The completion-model gate: the ull-crossover grid's events/sec
/// must hold 80% of the last committed measurement — the polled reap
/// path has no other throughput coverage in CI. Skipped with a note
/// when the trajectory predates the key.
fn check_ull(existing: &str) {
    let Some(base_eps) = last_f64_key(existing, "\"ull_crossover_events_per_sec\":") else {
        println!("ull gate: skipped (no ull-crossover key in the committed trajectory yet)");
        return;
    };
    let eps = run_ull_crossover();
    let floor = 0.8 * base_eps;
    if eps < floor {
        eprintln!(
            "ull-crossover regression: {eps:.0} events/sec is more than 20% below the \
             committed baseline {base_eps:.0} (floor {floor:.0})"
        );
        std::process::exit(1);
    }
    println!(
        "ull OK: {eps:.0} events/sec ({:+.1}% vs baseline)",
        100.0 * (eps / base_eps - 1.0)
    );
}

/// Extracts the last entry's `fig06_events_per_sec` from the
/// trajectory document.
fn last_events_per_sec(existing: &str) -> Option<f64> {
    last_f64_key(existing, "\"fig06_events_per_sec\":")
}

/// Extracts the number after the final occurrence of `key` — same
/// no-parser discipline as [`append_entry`].
fn last_f64_key(existing: &str, key: &str) -> Option<f64> {
    let at = existing.rfind(key)? + key.len();
    let rest = &existing[at..];
    let end = rest.find([',', '}', ']', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Appends `entry` to a JSON array document without a JSON parser:
/// strip the closing bracket, add a comma if the array is non-empty,
/// and re-close. An empty or missing document starts a fresh array.
fn append_entry(existing: &str, entry: &Json) -> String {
    let body = existing.trim_end();
    let body = body.strip_suffix(']').unwrap_or("").trim_end();
    let mut out = String::new();
    if body.is_empty() || body == "[" {
        out.push_str("[\n");
    } else {
        out.push_str(body);
        out.push_str(",\n");
    }
    out.push_str("  ");
    out.push_str(&entry.to_string());
    out.push_str("\n]\n");
    out
}
