//! Regenerates Table II: the Fig. 13 run matrix, derived from the
//! geometry code.

use afa_bench::{banner, ExperimentScale};
use afa_core::experiment::table2;

fn main() {
    banner(
        "Table II — varying number of SSDs / CPU core",
        ExperimentScale::from_env(),
    );
    println!("{}", table2());
}
