//! Regenerates Table II (the Fig. 13 run matrix) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("table2")
}
