//! Regenerates Fig. 7 (+chrt -f 99) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("fig07")
}
