//! Regenerates the paper's Fig. 7 — +chrt -f 99 distribution figure.

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::experiment::fig7;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Fig. 7 — +chrt -f 99", scale);
    let fig = fig7(scale);
    println!("{}", fig.to_table());
    write_csv("fig07.csv", &fig.to_csv());
}
