//! The §III-B preliminary check: sequential reads saturate the PCIe
//! uplink; 4 KiB QD1 random reads sit far below it (§IV-G).

use afa_bench::{banner, ExperimentScale};
use afa_core::experiment::uplink_saturation;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Uplink saturation check", scale);
    println!("{}", uplink_saturation(scale).to_table());
}
