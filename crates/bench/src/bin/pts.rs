//! SNIA PTS-E style steady-state run on a scaled device (§III-B cites
//! PTS-E ch. 9 for the measurement methodology).

use afa_bench::{banner, ExperimentScale};
use afa_core::experiment::pts_random_write;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("SNIA PTS-E steady-state procedure", scale);
    println!("{}", pts_random_write(scale.seed, 30).to_table());
}
