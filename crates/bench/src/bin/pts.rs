//! SNIA PTS-E steady-state rounds via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("pts")
}
