//! Queue-depth knee curve of the Table I device.

use afa_bench::{banner, ExperimentScale};
use afa_core::experiment::qd_sweep;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Queue-depth sweep", scale);
    println!("{}", qd_sweep(scale.seed).to_table());
}
