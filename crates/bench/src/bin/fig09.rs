//! Regenerates Fig. 9 (+IRQ affinity pinned) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("fig09")
}
