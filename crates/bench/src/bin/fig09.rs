//! Regenerates the paper's Fig. 9 — +IRQ affinity distribution figure.

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::experiment::fig9;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Fig. 9 — +IRQ affinity", scale);
    let fig = fig9(scale);
    println!("{}", fig.to_table());
    write_csv("fig09.csv", &fig.to_csv());
}
