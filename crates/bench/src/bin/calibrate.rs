use afa_core::experiment::*;
use afa_core::TuningStage;
use afa_sim::SimDuration;

fn main() {
    let secs: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let ssds: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let scale = ExperimentScale::new(SimDuration::from_secs_f64(secs), ssds, 42);
    let t0 = std::time::Instant::now();
    let cmp = fig12(scale);
    println!("{}", cmp.to_table());
    let fig = run_stage(TuningStage::ExperimentalFirmware, scale);
    println!("{}", fig.to_table());
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
