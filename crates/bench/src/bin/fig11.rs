//! Regenerates Fig. 11 (experimental firmware, SMART off) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("fig11")
}
