//! Regenerates the paper's Fig. 11 — experimental firmware distribution figure.

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::experiment::fig11;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Fig. 11 — experimental firmware", scale);
    let fig = fig11(scale);
    println!("{}", fig.to_table());
    write_csv("fig11.csv", &fig.to_csv());
}
