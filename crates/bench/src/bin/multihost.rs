//! Multi-host enclosure isolation: host 0's latency vs. neighbor
//! hosts hammering their static partitions (§III-A).

use afa_bench::{banner, ExperimentScale};
use afa_core::experiment::multi_host_isolation;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Multi-host enclosure isolation", scale);
    println!("{}", multi_host_isolation(scale).to_table());
}
