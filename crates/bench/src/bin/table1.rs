//! Regenerates Table I: the device model measured against its data
//! sheet.

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::experiment::table1;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Table I — NVMe SSD specification", scale);
    let t = table1(scale.seed);
    println!("{}", t.to_table());
    let mut csv = String::from("metric,rated,measured\n");
    for (metric, rated, measured) in &t.rows {
        csv.push_str(&format!("{metric},{rated},{measured:.0}\n"));
    }
    write_csv("table1.csv", &csv);
}
