//! Regenerates Table I (device model, rated vs. measured) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("table1")
}
