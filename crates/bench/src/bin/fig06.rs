//! Regenerates Fig. 6 (default configuration) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("fig06")
}
