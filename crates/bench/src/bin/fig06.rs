//! Regenerates the paper's Fig. 6 — default configuration distribution figure.

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::experiment::fig6;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Fig. 6 — default configuration", scale);
    let fig = fig6(scale);
    println!("{}", fig.to_table());
    write_csv("fig06.csv", &fig.to_csv());
}
