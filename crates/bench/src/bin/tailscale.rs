//! The §I motivation quantified: client-perceived latency over a
//! RAID-0 striped volume, where the slowest member decides each
//! request's latency.

use afa_bench::{banner, ExperimentScale};
use afa_core::experiment::tail_at_scale;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Tail at scale — striped-volume client latency", scale);
    println!("{}", tail_at_scale(scale).to_table());
}
