//! Regenerates Fig. 13 and Fig. 14 (latency vs. SSDs per physical CPU
//! core, per the Table II run matrix) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_many(&["fig13", "fig14"])
}
