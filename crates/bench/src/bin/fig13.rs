//! Regenerates Fig. 13 and Fig. 14 (latency vs. SSDs per physical CPU
//! core, per the Table II run matrix).

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::experiment::{fig13_and_14, render_fig14};

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Fig. 13 + Fig. 14 — SSDs per physical core", scale);
    let (results, summaries) = fig13_and_14(scale);
    println!("{}", results.to_table());
    println!("{}", render_fig14(&summaries));
    for (row, fig) in &results.rows {
        let name = format!(
            "fig13{}.csv",
            row.label()
                .trim_start_matches("Fig. 13(")
                .trim_end_matches(')')
        );
        write_csv(&name, &fig.to_csv());
    }
}
