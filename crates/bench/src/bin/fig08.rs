//! Regenerates Fig. 8 (+isolcpus/nohz_full/rcu_nocbs/idle=poll) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("fig08")
}
