//! Regenerates the paper's Fig. 8 — +CPU isolation distribution figure.

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::experiment::fig8;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Fig. 8 — +CPU isolation", scale);
    let fig = fig8(scale);
    println!("{}", fig.to_table());
    write_csv("fig08.csv", &fig.to_csv());
}
