//! blktrace-style per-I/O stage traces via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("blktrace")
}
