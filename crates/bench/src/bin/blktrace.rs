//! blktrace-style per-I/O stage dump: trace a window of I/Os through
//! the full path and print the slowest one end to end.

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::{AfaConfig, AfaSystem, TuningStage};

fn main() {
    let scale = ExperimentScale::from_env();
    banner("blktrace-style I/O stage traces (default config)", scale);
    let result = AfaSystem::run(
        &AfaConfig::paper(TuningStage::Default)
            .with_ssds(scale.ssds.min(8))
            .with_runtime(scale.runtime.min(afa_sim::SimDuration::secs(2)))
            .with_seed(scale.seed)
            .with_io_tracing(200_000),
    );
    let traces = result.traces.expect("tracing enabled");
    println!("traced {} I/Os", traces.traces().len());
    if let Some(slowest) = traces.slowest() {
        println!(
            "slowest I/O ({:.1} us) stage by stage:",
            slowest.total().as_micros_f64()
        );
        println!("{}", slowest.to_text(0));
    }
    // Full dump as an artifact (first 1000 traces to keep it sane).
    let mut text = String::new();
    for (seq, t) in traces.traces().iter().take(1_000).enumerate() {
        text.push_str(&t.to_text(seq));
    }
    write_csv("blktrace.txt", &text);
}
