//! Per-cause latency budgets for every tuning stage — the simulated
//! LTTng analysis (§IV-B/§IV-D).

use afa_bench::{banner, ExperimentScale};
use afa_core::experiment::root_cause;
use afa_core::TuningStage;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Root-cause latency budgets", scale);
    for stage in TuningStage::ALL {
        println!("{}", root_cause(stage, scale).to_table());
    }
}
