//! Per-cause latency budgets across the tuning ladder via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("rootcause")
}
