//! Evaluates the §VI future-work prototypes (automatic I/O-aggressive
//! scheduler + affinity-aware IRQ balancer) against the paper's manual
//! tuning.

use afa_bench::{banner, ExperimentScale};
use afa_core::experiment::future_schedulers;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("§VI future-work prototypes", scale);
    println!("{}", future_schedulers(scale).to_table());
}
