//! Future-work prototype comparison via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("futurework")
}
