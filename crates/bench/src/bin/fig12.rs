//! Regenerates Fig. 12 (the four kernel configurations compared) and
//! the abstract's ×8 / ×400 headline numbers.

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::calibration::PAPER;
use afa_core::experiment::fig12;
use afa_stats::NinesPoint;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Fig. 12 — comparison of four system configurations", scale);
    let cmp = fig12(scale);
    println!("{}", cmp.to_table());
    println!(
        "paper reference: default max ~{:.0} us (std {:.0}), tuned std(max) {:.0}",
        PAPER.default_max_us, PAPER.default_max_std, PAPER.tuned_max_std
    );

    let mut csv = String::from("stage,metric,mean_us,std_us\n");
    for (stage, summary) in &cmp.stages {
        for point in NinesPoint::ALL {
            let m = summary.get(point);
            csv.push_str(&format!(
                "{},{},{:.2},{:.2}\n",
                stage.label(),
                point.label(),
                m.mean_us,
                m.std_us
            ));
        }
    }
    write_csv("fig12.csv", &csv);
}
