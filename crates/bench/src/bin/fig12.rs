//! Regenerates Fig. 12 (four kernel configurations side by side) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("fig12")
}
