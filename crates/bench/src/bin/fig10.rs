//! Regenerates Fig. 10 (latency scatter with SMART spikes) via the experiment registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    afa_bench::run_named("fig10")
}
