//! Regenerates the Fig. 10 latency scatter (32 SSDs, per-sample logs,
//! periodic SMART spikes).

use afa_bench::{banner, write_csv, ExperimentScale};
use afa_core::experiment::fig10;

fn main() {
    let scale = ExperimentScale::from_env();
    banner("Fig. 10 — latency scatter, 32 SSDs", scale);
    let scatter = fig10(scale);
    println!("{}", scatter.to_table());
    write_csv("fig10.csv", &scatter.to_csv());
}
