//! Benchmark and figure-regeneration harness for the AFA reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Figure/table regeneration** — `cargo bench -p afa-bench --bench
//!   figures` iterates the experiment registry
//!   ([`afa_core::experiment::registry`]) and prints paper-style
//!   tables. Individual binaries (`cargo run -p afa-bench --release
//!   --bin fig06`, …) are thin wrappers over [`run_named`]: each
//!   regenerates one artifact, prints its run manifest, and writes
//!   CSV + JSON under `target/afa-results/`.
//! * **Micro-benchmarks** — `cargo bench -p afa-bench --bench micro`
//!   (stdlib [`micro`] harness) measures the substrate hot paths the
//!   whole-array simulation leans on.
//!
//! Scaling: all experiment targets honour `AFA_SECONDS`, `AFA_SSDS`,
//! `AFA_SEED` and `AFA_FULL=1` (the paper's full 120 s × 64-SSD runs);
//! see [`afa_core::experiment::ExperimentScale::from_env`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

pub mod micro;

pub use afa_core::experiment::ExperimentScale;

/// Runs the registry experiment `name` at the environment scale:
/// banner, table, run manifest, then CSV + JSON artifacts under
/// `target/afa-results/`. Unknown names list the registry and fail.
pub fn run_named(name: &str) -> ExitCode {
    if run_named_inner(name) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs several registry experiments in sequence; fails if any name is
/// unknown.
pub fn run_many(names: &[&str]) -> ExitCode {
    let mut ok = true;
    for name in names {
        ok &= run_named_inner(name);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_named_inner(name: &str) -> bool {
    let Some(def) = afa_core::experiment::find(name) else {
        eprintln!("unknown experiment '{name}'; registered experiments:");
        for def in afa_core::experiment::registry() {
            eprintln!("  {:<20} {}", def.name, def.description);
        }
        return false;
    };
    let scale = ExperimentScale::from_env();
    banner(def.description, scale);
    let run = afa_core::experiment::run_experiment(def, scale);
    println!("{}", run.result.to_table());
    println!("{}", run.manifest.to_table());
    write_csv(&format!("{name}.csv"), &run.result.to_csv());
    write_csv(&format!("{name}.json"), &run.to_json().to_string());
    true
}

/// Prints a standard header naming the artifact being regenerated.
pub fn banner(artifact: &str, scale: ExperimentScale) {
    println!("=== {artifact} ===");
    println!(
        "scale: {:.1}s per job, {} SSDs, seed {} (paper: 120s, 64 SSDs)\n",
        scale.runtime.as_secs_f64(),
        scale.ssds,
        scale.seed
    );
}

/// Writes a CSV artifact under `target/afa-results/` and reports the
/// path.
pub fn write_csv(name: &str, content: &str) {
    let dir = std::path::Path::new("target/afa-results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_does_not_panic() {
        banner("test", ExperimentScale::quick());
    }

    #[test]
    fn write_csv_creates_artifact() {
        write_csv("unit-test.csv", "a,b\n1,2\n");
        let content = std::fs::read_to_string("target/afa-results/unit-test.csv").unwrap();
        assert!(content.contains("1,2"));
    }
}
