//! Benchmark and figure-regeneration harness for the AFA reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Figure/table regeneration** — `cargo bench -p afa-bench --bench
//!   figures` runs every experiment from the paper's evaluation
//!   (Table I, Table II, Fig. 6–14) plus the `DESIGN.md` ablations and
//!   prints paper-style tables. Individual binaries (`cargo run -p
//!   afa-bench --release --bin fig06`, …) regenerate one artifact each
//!   and emit CSV for plotting.
//! * **Micro-benchmarks** — `cargo bench -p afa-bench --bench micro`
//!   (Criterion) measures the substrate hot paths the whole-array
//!   simulation leans on.
//!
//! Scaling: all experiment targets honour `AFA_SECONDS`, `AFA_SSDS`,
//! `AFA_SEED` and `AFA_FULL=1` (the paper's full 120 s × 64-SSD runs);
//! see [`afa_core::experiment::ExperimentScale::from_env`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use afa_core::experiment::ExperimentScale;

/// Prints a standard header naming the artifact being regenerated.
pub fn banner(artifact: &str, scale: ExperimentScale) {
    println!("=== {artifact} ===");
    println!(
        "scale: {:.1}s per job, {} SSDs, seed {} (paper: 120s, 64 SSDs)\n",
        scale.runtime.as_secs_f64(),
        scale.ssds,
        scale.seed
    );
}

/// Writes a CSV artifact under `target/afa-results/` and reports the
/// path.
pub fn write_csv(name: &str, content: &str) {
    let dir = std::path::Path::new("target/afa-results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_does_not_panic() {
        banner("test", ExperimentScale::quick());
    }

    #[test]
    fn write_csv_creates_artifact() {
        write_csv("unit-test.csv", "a,b\n1,2\n");
        let content = std::fs::read_to_string("target/afa-results/unit-test.csv").unwrap();
        assert!(content.contains("1,2"));
    }
}
