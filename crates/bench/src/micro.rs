//! Stdlib-only micro-benchmark harness (no external dependencies).
//!
//! A tiny replacement for the slice of Criterion the workspace used:
//! each benchmark's batch size is calibrated so one batch takes a
//! measurable slice of wall time, the op is warmed for a pinned
//! wall-time budget (cache/branch-predictor/frequency settle), then a
//! fixed number of batches is timed and per-operation mean/median/std
//! are reported. The median is the headline number: on a shared host
//! the batch-time distribution is one-sided (occasional scheduler
//! preemptions make some batches much slower, never faster), so the
//! median is stable where the mean swings with the worst batch.
//!
//! # Example
//!
//! ```no_run
//! let mut harness = afa_bench::micro::Harness::from_args();
//! let mut x = 0u64;
//! harness.bench("wrapping_mul", || {
//!     x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
//!     std::hint::black_box(x);
//! });
//! harness.report();
//! ```

use std::time::Instant;

/// Per-benchmark timing summary, in nanoseconds per operation.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Operations per timed batch.
    pub batch: u64,
    /// Number of timed batches.
    pub samples: usize,
    /// Mean ns/op across batches.
    pub mean_ns: f64,
    /// Median ns/op across batches.
    pub median_ns: f64,
    /// Population std dev of ns/op across batches.
    pub std_ns: f64,
    /// Fastest batch, ns/op.
    pub min_ns: f64,
    /// Slowest batch, ns/op.
    pub max_ns: f64,
}

/// Runs micro-benchmarks and collects [`BenchResult`]s.
pub struct Harness {
    filter: Option<String>,
    samples: usize,
    target_batch_nanos: u64,
    warmup_nanos: u64,
    results: Vec<BenchResult>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            filter: None,
            samples: 25,
            target_batch_nanos: 2_000_000,
            // Pinned warmup budget per bench: long enough for the
            // first-touch page faults, cache fills and CPU frequency
            // ramp to finish before the first timed batch, short
            // enough that a full micro suite stays under a second of
            // overhead. Without it the early batches of the
            // queue-churn benches ran up to 2x slower than steady
            // state and dragged the reported numbers around run to
            // run.
            warmup_nanos: 100_000_000,
            results: Vec::new(),
        }
    }
}

impl Harness {
    /// A harness taking the first non-flag CLI argument as a substring
    /// filter (cargo's bench runner passes flags like `--bench`).
    pub fn from_args() -> Self {
        Harness {
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
            ..Harness::default()
        }
    }

    /// Whether `name` passes the filter.
    pub fn wants(&self, name: &str) -> bool {
        self.filter
            .as_ref()
            .is_none_or(|f| name.contains(f.as_str()))
    }

    /// Times `op` (skipped unless [`Harness::wants`]) and records the
    /// result.
    pub fn bench(&mut self, name: &str, mut op: impl FnMut()) {
        if !self.wants(name) {
            return;
        }
        // Calibrate: double the batch until one batch takes a
        // measurable slice of wall time.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                op();
            }
            if t0.elapsed().as_nanos() as u64 >= self.target_batch_nanos || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        // Pinned warmup: run untimed batches until the wall-time
        // budget is spent, so the timed samples below all observe the
        // op in steady state.
        let warm0 = Instant::now();
        while (warm0.elapsed().as_nanos() as u64) < self.warmup_nanos {
            for _ in 0..batch {
                op();
            }
        }
        // Measure.
        let mut per_op: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    op();
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_op.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = per_op.len();
        let mean = per_op.iter().sum::<f64>() / n as f64;
        let var = per_op.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let median = if n.is_multiple_of(2) {
            (per_op[n / 2 - 1] + per_op[n / 2]) / 2.0
        } else {
            per_op[n / 2]
        };
        let result = BenchResult {
            name: name.to_owned(),
            batch,
            samples: n,
            mean_ns: mean,
            median_ns: median,
            std_ns: var.sqrt(),
            min_ns: per_op[0],
            max_ns: per_op[n - 1],
        };
        println!(
            "{:<28} {:>10.1} ns/op median  (mean {:.1}, std {:.1}, {} x {} ops)",
            result.name,
            result.median_ns,
            result.mean_ns,
            result.std_ns,
            result.samples,
            result.batch
        );
        self.results.push(result);
    }

    /// Results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a summary table of every recorded result.
    pub fn report(&self) {
        if self.results.is_empty() {
            println!("no benchmarks matched the filter");
            return;
        }
        println!();
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "benchmark", "mean(ns)", "median(ns)", "std(ns)", "min(ns)", "max(ns)"
        );
        for r in &self.results {
            println!(
                "{:<28} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                r.name, r.mean_ns, r.median_ns, r.std_ns, r.min_ns, r.max_ns
            );
        }
    }
}

/// Registers the event-queue steady-state churn benches
/// (`queue_push_pop_1k`, `queue_push_pop_64k`) on `harness`.
///
/// Shared by `cargo bench --bench micro` and the `desperf` trajectory
/// binary so both measure exactly the same workload: fixed-occupancy
/// pop-then-push with pseudo-random inter-event gaps mimicking the
/// ~0.1–50 µs spread of completion/interrupt events in a real run. The
/// whole-array simulation holds ~2 events per outstanding I/O, so 1 K
/// ≈ a small array and 64 K ≈ far beyond the paper's 64-SSD full-scale
/// run.
pub fn register_queue_churn(harness: &mut Harness) {
    use afa_sim::{EventQueue, SimTime};
    for &(name, depth) in &[
        ("queue_push_pop_1k", 1_024u64),
        ("queue_push_pop_64k", 65_536),
    ] {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(depth as usize);
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut gap = move || {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            1 + (x >> 48) % 50_000
        };
        let mut horizon = 0u64;
        for i in 0..depth {
            horizon += gap();
            q.push(SimTime::from_nanos(horizon), i);
        }
        harness.bench(name, || {
            let (t, e) = q.pop().expect("queue stays at fixed depth");
            horizon = horizon.max(t.as_nanos()) + gap();
            q.push(SimTime::from_nanos(std::hint::black_box(horizon)), e);
            std::hint::black_box(t);
        });
    }
}

/// Registers the histogram hot-path bench (`histogram_record`) on
/// `harness`: one `record` per iteration over a pseudo-random latency
/// stream, the once-per-I/O cost every simulated sample pays.
pub fn register_histogram_record(harness: &mut Harness) {
    let mut h = afa_stats::LatencyHistogram::new();
    let mut x = 12345u64;
    harness.bench("histogram_record", || {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        h.record(std::hint::black_box(20_000 + (x >> 40)));
    });
}

/// Registers the request-serving hot-path bench (`frontend_fanout_64`)
/// on `harness`: one full 64-wide request per iteration — stripe
/// mapping into 64 sub-I/Os, [`afa_frontend::RequestBook`] open, and
/// all 64 sub completions. This is the per-request bookkeeping cost
/// the `tailscale-fanout` / `tailscale-hedge` experiments pay on top
/// of the device/host substrate.
pub fn register_frontend_fanout(harness: &mut Harness) {
    use afa_frontend::RequestBook;
    use afa_sim::SimTime;
    use afa_volume::{StripeConfig, StripedVolume};

    let volume = StripedVolume::new((0..64).collect(), StripeConfig::new(4096));
    let mut book = RequestBook::new();
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut now = 0u64;
    harness.bench("frontend_fanout_64", || {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let page = (x >> 33) % 4_000_000;
        let subs = volume.map_read(page, 64 * 4096);
        now += 1_000;
        let arrived = SimTime::from_nanos(now);
        let id = book.begin(0, arrived, SimTime::from_nanos(now + 200), &subs);
        for sub in 0..subs.len() {
            now += 10;
            std::hint::black_box(book.complete_sub(id, sub, SimTime::from_nanos(now), false));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_harness() -> Harness {
        Harness {
            filter: None,
            samples: 3,
            target_batch_nanos: 1_000,
            warmup_nanos: 10_000,
            results: Vec::new(),
        }
    }

    #[test]
    fn bench_records_a_result() {
        let mut h = quick_harness();
        let mut x = 1u64;
        h.bench("mul", || {
            x = x.wrapping_mul(3);
            std::hint::black_box(x);
        });
        assert_eq!(h.results().len(), 1);
        let r = &h.results()[0];
        assert_eq!(r.samples, 3);
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn registered_micro_benches_record() {
        let mut h = Harness {
            filter: Some("1k".to_owned()),
            ..quick_harness()
        };
        register_queue_churn(&mut h);
        register_histogram_record(&mut h);
        assert_eq!(h.results().len(), 1, "only queue_push_pop_1k matches");
        assert_eq!(h.results()[0].name, "queue_push_pop_1k");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut h = Harness {
            filter: Some("histogram".to_owned()),
            ..quick_harness()
        };
        h.bench("rng_next_u64", || {});
        assert!(h.results().is_empty());
        assert!(h.wants("histogram_record"));
        assert!(!h.wants("rng_next_u64"));
    }
}
