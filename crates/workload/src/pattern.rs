//! Access-pattern generation.

use afa_sim::SimRng;

use crate::job::RwPattern;

/// One generated operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op {
    /// Starting 4 KiB logical page.
    pub lba: u64,
    /// Whether this is a write.
    pub is_write: bool,
}

/// Generates the LBA stream for a job.
#[derive(Clone, Debug)]
pub struct AccessPattern {
    rw: RwPattern,
    region_pages: u64,
    pages_per_op: u64,
    cursor: u64,
    rng: SimRng,
}

impl AccessPattern {
    /// Creates a generator over the first `region_pages` 4 KiB pages,
    /// issuing `block_size`-byte operations.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one operation.
    pub fn new(rw: RwPattern, region_pages: u64, block_size: u32, rng: SimRng) -> Self {
        let pages_per_op = (block_size / 4096) as u64;
        assert!(
            region_pages >= pages_per_op,
            "region smaller than one operation"
        );
        AccessPattern {
            rw,
            region_pages,
            pages_per_op,
            cursor: 0,
            rng,
        }
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> Op {
        let max_start = self.region_pages - self.pages_per_op;
        match self.rw {
            RwPattern::RandRead => Op {
                lba: self.random_aligned(max_start),
                is_write: false,
            },
            RwPattern::RandWrite => Op {
                lba: self.random_aligned(max_start),
                is_write: true,
            },
            RwPattern::SeqRead => Op {
                lba: self.advance_sequential(),
                is_write: false,
            },
            RwPattern::SeqWrite => Op {
                lba: self.advance_sequential(),
                is_write: true,
            },
            RwPattern::RandRw { read_pct } => {
                let is_write = !self.rng.chance(read_pct as f64 / 100.0);
                Op {
                    lba: self.random_aligned(max_start),
                    is_write,
                }
            }
        }
    }

    fn random_aligned(&mut self, max_start: u64) -> u64 {
        let slots = max_start / self.pages_per_op + 1;
        self.rng.below(slots) * self.pages_per_op
    }

    fn advance_sequential(&mut self) -> u64 {
        let lba = self.cursor;
        self.cursor += self.pages_per_op;
        if self.cursor + self.pages_per_op > self.region_pages {
            self.cursor = 0;
        }
        lba
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed(42)
    }

    #[test]
    fn random_reads_stay_in_region() {
        let mut p = AccessPattern::new(RwPattern::RandRead, 1_000, 4096, rng());
        for _ in 0..10_000 {
            let op = p.next_op();
            assert!(op.lba < 1_000);
            assert!(!op.is_write);
        }
    }

    #[test]
    fn random_large_blocks_are_aligned_and_bounded() {
        let mut p = AccessPattern::new(RwPattern::RandWrite, 1_000, 32_768, rng());
        for _ in 0..10_000 {
            let op = p.next_op();
            assert_eq!(op.lba % 8, 0, "32 KiB ops must be 8-page aligned");
            assert!(op.lba + 8 <= 1_000);
            assert!(op.is_write);
        }
    }

    #[test]
    fn sequential_advances_and_wraps() {
        let mut p = AccessPattern::new(RwPattern::SeqRead, 10, 4096, rng());
        let lbas: Vec<u64> = (0..12).map(|_| p.next_op().lba).collect();
        assert_eq!(lbas[..10], (0..10).collect::<Vec<u64>>()[..]);
        assert_eq!(lbas[10], 0, "wraps to start");
    }

    #[test]
    fn mixed_ratio_approximates_read_pct() {
        let mut p = AccessPattern::new(RwPattern::RandRw { read_pct: 70 }, 1_000, 4096, rng());
        let writes = (0..100_000).filter(|_| p.next_op().is_write).count();
        let write_frac = writes as f64 / 100_000.0;
        assert!(
            (write_frac - 0.30).abs() < 0.01,
            "write fraction {write_frac}"
        );
    }

    #[test]
    fn random_covers_the_region() {
        let mut p = AccessPattern::new(RwPattern::RandRead, 64, 4096, rng());
        let mut seen = [false; 64];
        for _ in 0..10_000 {
            seen[p.next_op().lba as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "random pattern missed pages");
    }

    #[test]
    #[should_panic(expected = "region smaller")]
    fn tiny_region_panics() {
        let _ = AccessPattern::new(RwPattern::SeqRead, 1, 16_384, rng());
    }
}
