//! Per-job runtime bookkeeping.

use afa_sim::{SimRng, SimTime};

use crate::job::JobSpec;
use crate::pattern::{AccessPattern, Op};
use crate::report::JobReport;

/// Live state of one running job: the pattern generator, in-flight
/// accounting and the accumulating report. The system simulator owns
/// the actual submit/complete orchestration and calls back into this.
#[derive(Clone, Debug)]
pub struct JobState {
    spec: JobSpec,
    pattern: AccessPattern,
    report: JobReport,
    inflight: u32,
    issued: u64,
    started_at: SimTime,
    deadline: SimTime,
    stopped: bool,
}

impl JobState {
    /// Creates the runtime state for `spec`, starting at `start`.
    pub fn new(spec: JobSpec, start: SimTime, rng: SimRng) -> Self {
        let pattern = AccessPattern::new(
            spec.rw_pattern(),
            spec.region_pages(),
            spec.block_size(),
            rng,
        );
        let report = JobReport::new(spec.logs_latency());
        let deadline = start + spec.runtime_limit();
        JobState {
            spec,
            pattern,
            report,
            inflight: 0,
            issued: 0,
            started_at: start,
            deadline,
            stopped: false,
        }
    }

    /// The job's specification.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Whether the job may issue another operation at `now`
    /// (queue-depth slot free, not past the deadline, not stopped).
    pub fn can_issue(&self, now: SimTime) -> bool {
        !self.stopped && now < self.deadline && self.inflight < self.spec.iodepth()
    }

    /// Whether the job has reached its deadline with no I/O in
    /// flight.
    pub fn is_finished(&self, now: SimTime) -> bool {
        (self.stopped || now >= self.deadline) && self.inflight == 0
    }

    /// Draws the next operation and marks it in flight.
    ///
    /// # Panics
    ///
    /// Panics if called when [`JobState::can_issue`] is false (the
    /// simulator must check first).
    pub fn issue(&mut self, now: SimTime) -> Op {
        assert!(self.can_issue(now), "issue() without a free slot");
        self.inflight += 1;
        self.issued += 1;
        self.pattern.next_op()
    }

    /// Records a completion whose end-to-end latency is
    /// `latency_ns`.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight.
    pub fn complete(&mut self, latency_ns: u64) {
        assert!(self.inflight > 0, "complete() without in-flight I/O");
        self.inflight -= 1;
        self.report.record(latency_ns, self.spec.block_size());
    }

    /// Force-stops the job (no further issues).
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Operations currently in flight.
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// When the job started.
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// The job's issue deadline.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// The accumulated report.
    pub fn report(&self) -> &JobReport {
        &self.report
    }

    /// Consumes the state, yielding the final report.
    pub fn into_report(self) -> JobReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_sim::SimDuration;

    fn job(depth: u32) -> JobState {
        let spec = JobSpec::paper_default(0)
            .iodepth_n(depth)
            .runtime(SimDuration::secs(1));
        JobState::new(spec, SimTime::ZERO, SimRng::from_seed(1))
    }

    #[test]
    fn queue_depth_limits_inflight() {
        let mut j = job(2);
        assert!(j.can_issue(SimTime::ZERO));
        j.issue(SimTime::ZERO);
        assert!(j.can_issue(SimTime::ZERO));
        j.issue(SimTime::ZERO);
        assert!(!j.can_issue(SimTime::ZERO), "QD2 full");
        j.complete(25_000);
        assert!(j.can_issue(SimTime::ZERO));
        assert_eq!(j.issued(), 2);
        assert_eq!(j.inflight(), 1);
    }

    #[test]
    fn deadline_stops_issue_but_waits_for_inflight() {
        let mut j = job(1);
        let late = SimTime::ZERO + SimDuration::secs(2);
        j.issue(SimTime::ZERO);
        assert!(!j.can_issue(late));
        assert!(!j.is_finished(late), "still one in flight");
        j.complete(30_000);
        assert!(j.is_finished(late));
    }

    #[test]
    fn stop_halts_issuing() {
        let mut j = job(4);
        j.stop();
        assert!(!j.can_issue(SimTime::ZERO));
        assert!(j.is_finished(SimTime::ZERO));
    }

    #[test]
    #[should_panic(expected = "without a free slot")]
    fn issue_over_depth_panics() {
        let mut j = job(1);
        j.issue(SimTime::ZERO);
        j.issue(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "without in-flight")]
    fn complete_without_inflight_panics() {
        let mut j = job(1);
        j.complete(1);
    }

    #[test]
    fn completions_feed_the_report() {
        let mut j = job(1);
        for _ in 0..10 {
            j.issue(SimTime::ZERO);
            j.complete(25_000);
        }
        assert_eq!(j.report().completed(), 10);
        assert_eq!(j.report().bytes_transferred(), 10 * 4096);
        let report = j.into_report();
        assert_eq!(report.histogram().count(), 10);
    }
}
