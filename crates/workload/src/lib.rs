//! fio-like workload engine for the AFA reproduction.
//!
//! The paper drives every raw block device with one fio job — 4 KiB
//! random reads, queue depth 1, libaio, 120 s, thread pinned via
//! `cpus_allowed` (§III-B/§III-C) — and reads fio's completion-latency
//! percentiles. This crate provides the same vocabulary:
//!
//! * [`JobSpec`] — a builder covering the options the paper uses
//!   (pattern, block size, iodepth, runtime, pinning, scheduling class,
//!   I/O engine, optional full latency logging),
//! * [`AccessPattern`] — random/sequential generators over a device
//!   region,
//! * [`JobState`] — the per-job issue/complete bookkeeping used by the
//!   system simulator,
//! * [`JobReport`] — per-job results: latency histogram, optional
//!   per-sample log, and a fio-style text rendering.
//!
//! # Example
//!
//! ```
//! use afa_sim::SimDuration;
//! use afa_workload::JobSpec;
//!
//! let job = JobSpec::paper_default(0).runtime(SimDuration::secs(120));
//! assert_eq!(job.block_size(), 4096);
//! assert_eq!(job.iodepth(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod job;
mod jobfile;
mod pattern;
mod report;
mod state;

pub use arrival::ArrivalProcess;
pub use job::{IoEngine, JobSpec, RwPattern};
pub use jobfile::{parse_jobfile, ParseJobFileError};
pub use pattern::{AccessPattern, Op};
pub use report::JobReport;
pub use state::JobState;
