//! fio jobfile (INI) parsing.
//!
//! The paper drives its measurements with fio; for drop-in familiarity
//! this module parses the subset of fio's INI jobfile syntax the
//! methodology uses into [`JobSpec`]s:
//!
//! ```ini
//! [global]
//! rw=randread
//! bs=4k
//! iodepth=1
//! ioengine=libaio
//! runtime=120
//!
//! [nvme0]
//! filename=/dev/nvme0
//! cpus_allowed=4
//! ```
//!
//! Supported keys: `rw`, `bs`, `iodepth`, `ioengine`, `runtime`,
//! `filename` (`/dev/nvmeN` → device N), `cpus_allowed`, `numjobs`,
//! `rate_iops`, `write_lat_log` (any value = on), `size` (region, in
//! bytes with optional k/m/g suffix).

use afa_host::{CpuId, SchedPolicy};
use afa_sim::SimDuration;

use crate::job::{IoEngine, JobSpec, RwPattern};

/// Error produced when a jobfile cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseJobFileError {
    /// 1-based line number the error was detected on (0 = file-level).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseJobFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jobfile line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseJobFileError {}

fn err(line: usize, message: impl Into<String>) -> ParseJobFileError {
    ParseJobFileError {
        line,
        message: message.into(),
    }
}

/// Parses a size like `4k`, `128k`, `1m`, `4096` into bytes.
fn parse_size(line: usize, v: &str) -> Result<u64, ParseJobFileError> {
    let v = v.trim().to_ascii_lowercase();
    let (digits, mult) = match v.strip_suffix(['k', 'm', 'g']) {
        Some(d) if v.ends_with('k') => (d, 1024u64),
        Some(d) if v.ends_with('m') => (d, 1024 * 1024),
        Some(d) => (d, 1024 * 1024 * 1024),
        None => (v.as_str(), 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n * mult)
        .map_err(|e| err(line, format!("bad size '{v}': {e}")))
}

#[derive(Clone, Default)]
struct Section {
    rw: Option<RwPattern>,
    bs: Option<u32>,
    iodepth: Option<u32>,
    engine: Option<IoEngine>,
    runtime_s: Option<f64>,
    device: Option<usize>,
    cpu: Option<CpuId>,
    numjobs: Option<u32>,
    rate_iops: Option<u64>,
    log_lat: bool,
    size_pages: Option<u64>,
}

impl Section {
    fn apply(&mut self, line: usize, key: &str, value: &str) -> Result<(), ParseJobFileError> {
        match key {
            "rw" | "readwrite" => {
                self.rw = Some(match value {
                    "randread" => RwPattern::RandRead,
                    "randwrite" => RwPattern::RandWrite,
                    "read" => RwPattern::SeqRead,
                    "write" => RwPattern::SeqWrite,
                    "randrw" => RwPattern::RandRw { read_pct: 50 },
                    other => return Err(err(line, format!("unknown rw '{other}'"))),
                });
            }
            "rwmixread" => {
                let pct: u8 = value
                    .parse()
                    .map_err(|e| err(line, format!("bad rwmixread: {e}")))?;
                self.rw = Some(RwPattern::RandRw { read_pct: pct });
            }
            "bs" | "blocksize" => {
                let bytes = parse_size(line, value)?;
                if bytes == 0 || bytes % 4096 != 0 || bytes > u32::MAX as u64 {
                    return Err(err(line, "bs must be a positive multiple of 4k"));
                }
                self.bs = Some(bytes as u32);
            }
            "iodepth" => {
                self.iodepth = Some(
                    value
                        .parse()
                        .map_err(|e| err(line, format!("bad iodepth: {e}")))?,
                );
            }
            "ioengine" => {
                self.engine = Some(match value {
                    "libaio" => IoEngine::Libaio,
                    "sync" | "psync" => IoEngine::Sync,
                    "io_uring_poll" | "pvsync2_hipri" | "polling" => IoEngine::Polling,
                    "io_uring_hybrid" | "hybrid" => IoEngine::HybridPoll,
                    other => return Err(err(line, format!("unknown ioengine '{other}'"))),
                });
            }
            "runtime" => {
                let v = value.trim_end_matches('s');
                self.runtime_s = Some(
                    v.parse()
                        .map_err(|e| err(line, format!("bad runtime: {e}")))?,
                );
            }
            "filename" => {
                let dev = value
                    .trim_start_matches("/dev/nvme")
                    .split(|c: char| !c.is_ascii_digit())
                    .next()
                    .unwrap_or("");
                self.device = Some(
                    dev.parse()
                        .map_err(|_| err(line, format!("filename '{value}' is not /dev/nvmeN")))?,
                );
            }
            "cpus_allowed" => {
                let cpu: u16 = value
                    .parse()
                    .map_err(|e| err(line, format!("bad cpus_allowed: {e}")))?;
                self.cpu = Some(CpuId(cpu));
            }
            "numjobs" => {
                self.numjobs = Some(
                    value
                        .parse()
                        .map_err(|e| err(line, format!("bad numjobs: {e}")))?,
                );
            }
            "rate_iops" => {
                self.rate_iops = Some(
                    value
                        .parse()
                        .map_err(|e| err(line, format!("bad rate_iops: {e}")))?,
                );
            }
            "write_lat_log" => self.log_lat = true,
            "size" => {
                let bytes = parse_size(line, value)?;
                self.size_pages = Some((bytes / 4096).max(1));
            }
            // fio has hundreds of keys; tolerate the common no-op ones.
            "direct" | "group_reporting" | "name" | "time_based" | "thread" => {}
            other => return Err(err(line, format!("unsupported key '{other}'"))),
        }
        Ok(())
    }

    fn merged_with(&self, global: &Section) -> Section {
        Section {
            rw: self.rw.or(global.rw),
            bs: self.bs.or(global.bs),
            iodepth: self.iodepth.or(global.iodepth),
            engine: self.engine.or(global.engine),
            runtime_s: self.runtime_s.or(global.runtime_s),
            device: self.device.or(global.device),
            cpu: self.cpu.or(global.cpu),
            numjobs: self.numjobs.or(global.numjobs),
            rate_iops: self.rate_iops.or(global.rate_iops),
            log_lat: self.log_lat || global.log_lat,
            size_pages: self.size_pages.or(global.size_pages),
        }
    }

    fn into_specs(self, line: usize) -> Result<Vec<JobSpec>, ParseJobFileError> {
        let device = self
            .device
            .ok_or_else(|| err(line, "job needs filename=/dev/nvmeN"))?;
        let copies = self.numjobs.unwrap_or(1).max(1);
        let mut specs = Vec::with_capacity(copies as usize);
        for copy in 0..copies {
            let mut spec = JobSpec::paper_default(device + copy as usize);
            if let Some(rw) = self.rw {
                spec = spec.rw(rw);
            }
            if let Some(bs) = self.bs {
                spec = spec.block_size_bytes(bs);
            }
            if let Some(depth) = self.iodepth {
                spec = spec.iodepth_n(depth);
            }
            if let Some(engine) = self.engine {
                spec = spec.ioengine(engine);
            }
            if let Some(secs) = self.runtime_s {
                spec = spec.runtime(SimDuration::from_secs_f64(secs));
            }
            if let Some(cpu) = self.cpu {
                spec = spec.cpus_allowed(CpuId(cpu.0 + copy as u16));
            }
            if let Some(iops) = self.rate_iops {
                spec = spec.rate_iops_cap(iops);
            }
            if let Some(pages) = self.size_pages {
                spec = spec.region(pages);
            }
            specs.push(
                spec.log_latency(self.log_lat)
                    .sched(SchedPolicy::default_fair()),
            );
        }
        Ok(specs)
    }
}

/// Parses a fio-style INI jobfile into job specs.
///
/// # Errors
///
/// Returns [`ParseJobFileError`] on unknown keys, malformed values, or
/// a job without a `filename`.
///
/// # Example
///
/// ```
/// let text = "\
/// [global]
/// rw=randread
/// bs=4k
/// iodepth=1
/// runtime=120
///
/// [job0]
/// filename=/dev/nvme0
/// cpus_allowed=4
/// ";
/// let jobs = afa_workload::parse_jobfile(text)?;
/// assert_eq!(jobs.len(), 1);
/// assert_eq!(jobs[0].device(), 0);
/// # Ok::<(), afa_workload::ParseJobFileError>(())
/// ```
pub fn parse_jobfile(text: &str) -> Result<Vec<JobSpec>, ParseJobFileError> {
    let mut global = Section::default();
    let mut jobs: Vec<(usize, Section)> = Vec::new();
    let mut current: Option<(usize, Section)> = None;
    let mut in_global = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            if let Some(done) = current.take() {
                jobs.push(done);
            }
            if name.eq_ignore_ascii_case("global") {
                in_global = true;
            } else {
                in_global = false;
                current = Some((line_no, Section::default()));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            // Bare boolean keys (e.g. `group_reporting`).
            let target = if in_global {
                &mut global
            } else {
                &mut current
                    .as_mut()
                    .ok_or_else(|| err(line_no, "key outside any section"))?
                    .1
            };
            target.apply(line_no, line, "1")?;
            continue;
        };
        let target = if in_global {
            &mut global
        } else {
            &mut current
                .as_mut()
                .ok_or_else(|| err(line_no, "key outside any section"))?
                .1
        };
        target.apply(line_no, key.trim(), value.trim())?;
    }
    if let Some(done) = current.take() {
        jobs.push(done);
    }

    let mut specs = Vec::new();
    for (line, section) in jobs {
        specs.extend(section.merged_with(&global).into_specs(line)?);
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_STYLE: &str = "\
[global]
ioengine=libaio
direct=1
rw=randread
bs=4k
iodepth=1
runtime=120

[nvme0]
filename=/dev/nvme0
cpus_allowed=4

[nvme1]
filename=/dev/nvme1
cpus_allowed=5
";

    #[test]
    fn parses_the_paper_style_jobfile() {
        let jobs = parse_jobfile(PAPER_STYLE).expect("parse");
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].device(), 0);
        assert_eq!(jobs[1].device(), 1);
        assert_eq!(jobs[0].block_size(), 4096);
        assert_eq!(jobs[0].iodepth(), 1);
        assert_eq!(jobs[0].engine(), IoEngine::Libaio);
        assert_eq!(jobs[0].pinned_cpu(), Some(CpuId(4)));
        assert_eq!(jobs[1].pinned_cpu(), Some(CpuId(5)));
        assert_eq!(jobs[0].runtime_limit(), SimDuration::secs(120));
    }

    #[test]
    fn numjobs_replicates_with_shifted_device_and_cpu() {
        let text = "\
[many]
filename=/dev/nvme8
cpus_allowed=10
numjobs=3
";
        let jobs = parse_jobfile(text).expect("parse");
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].device(), 8);
        assert_eq!(jobs[2].device(), 10);
        assert_eq!(jobs[2].pinned_cpu(), Some(CpuId(12)));
    }

    #[test]
    fn sizes_and_mixes() {
        let text = "\
[j]
filename=/dev/nvme0
bs=128k
rw=randrw
rwmixread=70
size=1g
rate_iops=5000
write_lat_log=x
";
        let jobs = parse_jobfile(text).expect("parse");
        let j = &jobs[0];
        assert_eq!(j.block_size(), 131_072);
        assert_eq!(j.rw_pattern(), RwPattern::RandRw { read_pct: 70 });
        assert_eq!(j.region_pages(), 262_144);
        assert_eq!(j.rate_iops(), Some(5_000));
        assert!(j.logs_latency());
    }

    #[test]
    fn unknown_key_errors_with_line_number() {
        let text = "[j]\nfilename=/dev/nvme0\nwombat=7\n";
        let e = parse_jobfile(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("wombat"));
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn missing_filename_errors() {
        let e = parse_jobfile("[j]\nbs=4k\n").unwrap_err();
        assert!(e.message.contains("filename"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "; comment\n# also\n\n[j]\nfilename=/dev/nvme2\n";
        let jobs = parse_jobfile(text).expect("parse");
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].device(), 2);
    }

    #[test]
    fn bad_bs_rejected() {
        let e = parse_jobfile("[j]\nfilename=/dev/nvme0\nbs=1000\n").unwrap_err();
        assert!(e.message.contains("bs"));
    }

    #[test]
    fn polling_engine_aliases() {
        let jobs =
            parse_jobfile("[j]\nfilename=/dev/nvme0\nioengine=pvsync2_hipri\n").expect("parse");
        assert_eq!(jobs[0].engine(), IoEngine::Polling);
    }

    #[test]
    fn hybrid_engine_aliases() {
        for alias in ["io_uring_hybrid", "hybrid"] {
            let text = format!("[j]\nfilename=/dev/nvme0\nioengine={alias}\n");
            let jobs = parse_jobfile(&text).expect("parse");
            assert_eq!(jobs[0].engine(), IoEngine::HybridPoll);
        }
    }
}
