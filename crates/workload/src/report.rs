//! Job results: histograms, logs, and fio-style rendering.

use afa_sim::SimTime;
use afa_stats::series::LatencyLog;
use afa_stats::{LatencyHistogram, LatencyProfile, NinesPoint};

/// Accumulated results of one job.
#[derive(Clone, Debug)]
pub struct JobReport {
    hist: LatencyHistogram,
    log: Option<LatencyLog>,
    completed: u64,
    bytes: u64,
}

impl JobReport {
    /// Creates an empty report; `log_latency` enables the per-sample
    /// log (fio's `write_lat_log`).
    ///
    /// The log keeps every sample above 100 µs (the spikes a Fig. 10
    /// style scatter is after) and every 16th baseline sample, which
    /// bounds memory on multi-million-I/O runs without losing the
    /// plot's structure.
    pub fn new(log_latency: bool) -> Self {
        JobReport {
            hist: LatencyHistogram::new(),
            log: log_latency.then(|| LatencyLog::with_decimation(16, 100_000)),
            completed: 0,
            bytes: 0,
        }
    }

    /// Records one completion.
    pub fn record(&mut self, latency_ns: u64, bytes: u32) {
        self.hist.record(latency_ns);
        if let Some(log) = &mut self.log {
            log.push(latency_ns);
        }
        self.completed += 1;
        self.bytes += bytes as u64;
    }

    /// Completions recorded.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Payload bytes transferred.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes
    }

    /// The completion-latency histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// The per-sample log, if enabled.
    pub fn latency_log(&self) -> Option<&LatencyLog> {
        self.log.as_ref()
    }

    /// The paper's metric set for this job.
    pub fn profile(&self) -> LatencyProfile {
        self.hist.profile()
    }

    /// Average IOPS over `elapsed` wall time.
    pub fn iops(&self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Average throughput in MB/s over `elapsed` wall time.
    pub fn throughput_mbps(&self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / secs / 1e6
        }
    }

    /// Renders fio-style "clat percentiles" output.
    pub fn to_fio_style(&self, name: &str) -> String {
        let p = self.profile();
        let mut out = String::new();
        out.push_str(&format!("{name}: ios={} ", self.completed));
        out.push_str(&format!(
            "clat avg={:.1}us min={:.1}us max={:.1}us\n",
            self.hist.mean() / 1_000.0,
            self.hist.min() as f64 / 1_000.0,
            self.hist.max() as f64 / 1_000.0
        ));
        out.push_str("  clat percentiles (usec):\n");
        for point in NinesPoint::ALL {
            if let Some(pct) = point.percentile() {
                out.push_str(&format!(
                    "   | {:>9.4}th=[{:>10.1}]\n",
                    pct,
                    p.get_micros(point)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_sim::SimDuration;

    #[test]
    fn empty_report() {
        let r = JobReport::new(false);
        assert_eq!(r.completed(), 0);
        assert_eq!(r.bytes_transferred(), 0);
        assert!(r.latency_log().is_none());
        assert_eq!(r.iops(SimTime::ZERO), 0.0);
    }

    #[test]
    fn records_accumulate() {
        let mut r = JobReport::new(true);
        for i in 1..=100u64 {
            r.record(i * 1_000, 4096);
        }
        assert_eq!(r.completed(), 100);
        assert_eq!(r.bytes_transferred(), 409_600);
        assert_eq!(r.histogram().count(), 100);
        assert_eq!(r.latency_log().unwrap().samples_seen(), 100);
    }

    #[test]
    fn iops_and_throughput() {
        let mut r = JobReport::new(false);
        for _ in 0..1_000 {
            r.record(25_000, 4096);
        }
        let one_second = SimTime::ZERO + SimDuration::secs(1);
        assert_eq!(r.iops(one_second), 1_000.0);
        assert!((r.throughput_mbps(one_second) - 4.096).abs() < 1e-9);
    }

    #[test]
    fn fio_style_output_contains_percentiles() {
        let mut r = JobReport::new(false);
        for i in 1..=10_000u64 {
            r.record(20_000 + i, 4096);
        }
        let text = r.to_fio_style("nvme0");
        assert!(text.contains("nvme0: ios=10000"));
        assert!(text.contains("99.0000th"));
        assert!(text.contains("99.9999th"));
        assert!(text.contains("clat avg="));
    }

    #[test]
    fn profile_matches_histogram() {
        let mut r = JobReport::new(false);
        r.record(1_000, 4096);
        r.record(99_000, 4096);
        let p = r.profile();
        assert_eq!(p.get(NinesPoint::Max), 99_000);
        assert_eq!(p.get(NinesPoint::Average), 50_000);
    }
}
