//! Job specification (the fio command line, as a builder).

use afa_host::{CpuId, SchedPolicy};
use afa_sim::SimDuration;

/// The I/O mix of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RwPattern {
    /// Uniformly random reads (the paper's workload).
    RandRead,
    /// Uniformly random writes.
    RandWrite,
    /// Sequential reads.
    SeqRead,
    /// Sequential writes.
    SeqWrite,
    /// Mixed random I/O with the given read percentage (0–100).
    RandRw {
        /// Percent of operations that are reads.
        read_pct: u8,
    },
}

/// How completions are reaped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoEngine {
    /// Linux AIO: submit, sleep, be woken by the completion interrupt
    /// (the paper's engine, §III-B).
    Libaio,
    /// Synchronous pread-style: identical path at queue depth 1.
    Sync,
    /// Busy-poll the completion queue: no interrupt, no wake-up — the
    /// §V "poll instead of interrupt" alternative. Costs CPU.
    Polling,
    /// io_uring-style hybrid poll: sleep for a fraction of the
    /// device's nominal latency, then spin. Keeps most of polling's
    /// latency win while giving back most of its CPU cost.
    HybridPoll,
}

/// One fio job: what to run against one device.
///
/// Builder-style setters consume and return `Self`, so a spec
/// configures in one chain that yields an owned value directly —
/// no trailing `clone()`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    device: usize,
    rw: RwPattern,
    block_size: u32,
    iodepth: u32,
    runtime: SimDuration,
    cpu: Option<CpuId>,
    policy: SchedPolicy,
    engine: IoEngine,
    region_pages: u64,
    log_latency: bool,
    rate_iops: Option<u64>,
}

impl JobSpec {
    /// The paper's §III-B job for `device`: 4 KiB random read,
    /// iodepth 1, libaio, 120 s, CFS nice 0 (pin with
    /// [`JobSpec::cpus_allowed`]).
    pub fn paper_default(device: usize) -> Self {
        JobSpec {
            device,
            rw: RwPattern::RandRead,
            block_size: 4096,
            iodepth: 1,
            runtime: SimDuration::secs(120),
            cpu: None,
            policy: SchedPolicy::default_fair(),
            engine: IoEngine::Libaio,
            region_pages: 200_000_000, // ~800 GB of 4 KiB pages
            log_latency: false,
            rate_iops: None,
        }
    }

    /// Sets the I/O mix.
    pub fn rw(mut self, rw: RwPattern) -> Self {
        self.rw = rw;
        self
    }

    /// Sets the block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if not a positive multiple of 4096.
    pub fn block_size_bytes(mut self, bs: u32) -> Self {
        assert!(
            bs > 0 && bs.is_multiple_of(4096),
            "block size must be a positive multiple of 4096"
        );
        self.block_size = bs;
        self
    }

    /// Sets the queue depth.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn iodepth_n(mut self, depth: u32) -> Self {
        assert!(depth > 0, "iodepth must be positive");
        self.iodepth = depth;
        self
    }

    /// Sets the run time.
    pub fn runtime(mut self, runtime: SimDuration) -> Self {
        self.runtime = runtime;
        self
    }

    /// Pins the job's thread to a CPU (fio's `cpus_allowed`).
    pub fn cpus_allowed(mut self, cpu: CpuId) -> Self {
        self.cpu = Some(cpu);
        self
    }

    /// Sets the scheduling class (`chrt`).
    pub fn sched(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the I/O engine.
    pub fn ioengine(mut self, engine: IoEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Restricts I/O to the first `pages` 4 KiB pages of the device.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn region(mut self, pages: u64) -> Self {
        assert!(pages > 0, "region must be non-empty");
        self.region_pages = pages;
        self
    }

    /// Enables per-sample completion-latency logging (fio's
    /// `write_lat_log`). Logging itself costs CPU per completion —
    /// the paper's Fig. 10 footnote had to halve the device count
    /// because of exactly this overhead.
    pub fn log_latency(mut self, enable: bool) -> Self {
        self.log_latency = enable;
        self
    }

    /// Caps the issue rate (fio's `rate_iops`).
    pub fn rate_iops_cap(mut self, iops: u64) -> Self {
        self.rate_iops = Some(iops);
        self
    }

    /// Target device index.
    pub fn device(&self) -> usize {
        self.device
    }

    /// I/O mix.
    pub fn rw_pattern(&self) -> RwPattern {
        self.rw
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Queue depth.
    pub fn iodepth(&self) -> u32 {
        self.iodepth
    }

    /// Run time.
    pub fn runtime_limit(&self) -> SimDuration {
        self.runtime
    }

    /// Pinned CPU, if any.
    pub fn pinned_cpu(&self) -> Option<CpuId> {
        self.cpu
    }

    /// Scheduling class.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// I/O engine.
    pub fn engine(&self) -> IoEngine {
        self.engine
    }

    /// Accessible region in 4 KiB pages.
    pub fn region_pages(&self) -> u64 {
        self.region_pages
    }

    /// Whether per-sample latency logging is on.
    pub fn logs_latency(&self) -> bool {
        self.log_latency
    }

    /// Issue-rate cap, if any.
    pub fn rate_iops(&self) -> Option<u64> {
        self.rate_iops
    }

    /// CPU cost of fio's per-completion latency logging when enabled.
    pub fn logging_cpu_overhead(&self) -> SimDuration {
        if self.log_latency {
            SimDuration::nanos(900)
        } else {
            SimDuration::ZERO
        }
    }

    /// Minimum gap between issues implied by [`JobSpec::rate_iops_cap`].
    pub fn min_issue_gap(&self) -> SimDuration {
        match self.rate_iops {
            Some(iops) if iops > 0 => SimDuration::from_secs_f64(1.0 / iops as f64),
            _ => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_methodology() {
        let j = JobSpec::paper_default(3);
        assert_eq!(j.device(), 3);
        assert_eq!(j.rw_pattern(), RwPattern::RandRead);
        assert_eq!(j.block_size(), 4096);
        assert_eq!(j.iodepth(), 1);
        assert_eq!(j.runtime_limit(), SimDuration::secs(120));
        assert_eq!(j.engine(), IoEngine::Libaio);
        assert!(!j.logs_latency());
        assert_eq!(j.policy(), SchedPolicy::default_fair());
    }

    #[test]
    fn builder_chains() {
        let j = JobSpec::paper_default(0)
            .rw(RwPattern::SeqRead)
            .block_size_bytes(131_072)
            .iodepth_n(8)
            .cpus_allowed(CpuId(4))
            .sched(SchedPolicy::chrt_fifo_99())
            .ioengine(IoEngine::Polling)
            .log_latency(true);
        assert_eq!(j.rw_pattern(), RwPattern::SeqRead);
        assert_eq!(j.block_size(), 131_072);
        assert_eq!(j.iodepth(), 8);
        assert_eq!(j.pinned_cpu(), Some(CpuId(4)));
        assert!(j.policy().is_realtime());
        assert_eq!(j.engine(), IoEngine::Polling);
        assert!(j.logs_latency());
        assert!(j.logging_cpu_overhead() > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "multiple of 4096")]
    fn bad_block_size_panics() {
        JobSpec::paper_default(0).block_size_bytes(1000);
    }

    #[test]
    #[should_panic(expected = "iodepth")]
    fn zero_iodepth_panics() {
        JobSpec::paper_default(0).iodepth_n(0);
    }

    #[test]
    fn rate_cap_implies_issue_gap() {
        let j = JobSpec::paper_default(0).rate_iops_cap(10_000);
        assert_eq!(j.min_issue_gap(), SimDuration::micros(100));
        assert_eq!(JobSpec::paper_default(0).min_issue_gap(), SimDuration::ZERO);
    }
}
