//! Property-based tests for the workload engine, on the first-party
//! [`afa_sim::check`] harness.

use afa_sim::check::run_cases;
use afa_sim::{SimDuration, SimRng, SimTime};
use afa_workload::{AccessPattern, JobSpec, JobState, RwPattern};

/// Every generated operation stays inside the region and respects
/// block alignment, for any pattern and block size.
#[test]
fn patterns_stay_in_bounds() {
    run_cases("patterns_stay_in_bounds", 64, |g| {
        let seed = g.u64_in(0, 1_000);
        let bs_pages = g.u32_in(1, 16);
        // The region must fit at least one block.
        let region = g.u64_in(bs_pages as u64, 100_000);
        let write_heavy = g.bool();
        let rw = if write_heavy {
            RwPattern::RandRw { read_pct: 30 }
        } else {
            RwPattern::RandRead
        };
        let mut pattern = AccessPattern::new(rw, region, bs_pages * 4096, SimRng::from_seed(seed));
        for _ in 0..1_000 {
            let op = pattern.next_op();
            assert!(op.lba + bs_pages as u64 <= region);
            assert_eq!(op.lba % bs_pages as u64, 0);
        }
    });
}

/// Sequential patterns visit every aligned offset before wrapping.
#[test]
fn sequential_covers_region() {
    run_cases("sequential_covers_region", 64, |g| {
        let region_units = g.u64_in(2, 200);
        let mut pattern =
            AccessPattern::new(RwPattern::SeqRead, region_units, 4096, SimRng::from_seed(1));
        let mut seen = vec![false; region_units as usize];
        for _ in 0..region_units {
            seen[pattern.next_op().lba as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    });
}

/// Issue/complete bookkeeping never exceeds the queue depth and
/// conserves counts.
#[test]
fn job_state_conserves_counts() {
    run_cases("job_state_conserves_counts", 64, |g| {
        let depth = g.u32_in(1, 32);
        let ops = g.u32_in(1, 500);
        let spec = JobSpec::paper_default(0)
            .iodepth_n(depth)
            .runtime(SimDuration::secs(3_600));
        let mut job = JobState::new(spec, SimTime::ZERO, SimRng::from_seed(2));
        let mut completed = 0u64;
        let now = SimTime::ZERO;
        for i in 0..ops {
            if job.can_issue(now) {
                job.issue(now);
            }
            assert!(job.inflight() <= depth);
            if i % 3 == 0 && job.inflight() > 0 {
                job.complete(30_000);
                completed += 1;
            }
        }
        assert_eq!(job.report().completed(), completed);
        assert_eq!(job.issued(), completed + job.inflight() as u64);
    });
}
