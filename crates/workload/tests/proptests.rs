//! Property-based tests for the workload engine.

use afa_sim::{SimDuration, SimRng, SimTime};
use afa_workload::{AccessPattern, JobSpec, JobState, RwPattern};
use proptest::prelude::*;

proptest! {
    /// Every generated operation stays inside the region and respects
    /// block alignment, for any pattern and block size.
    #[test]
    fn patterns_stay_in_bounds(seed in 0u64..1_000,
                               region in 64u64..100_000,
                               bs_pages in 1u32..16,
                               write_heavy in prop::bool::ANY) {
        prop_assume!(region >= bs_pages as u64);
        let rw = if write_heavy {
            RwPattern::RandRw { read_pct: 30 }
        } else {
            RwPattern::RandRead
        };
        let mut pattern = AccessPattern::new(rw, region, bs_pages * 4096, SimRng::from_seed(seed));
        for _ in 0..1_000 {
            let op = pattern.next_op();
            prop_assert!(op.lba + bs_pages as u64 <= region);
            prop_assert_eq!(op.lba % bs_pages as u64, 0);
        }
    }

    /// Sequential patterns visit every aligned offset before wrapping.
    #[test]
    fn sequential_covers_region(region_units in 2u64..200) {
        let mut pattern = AccessPattern::new(
            RwPattern::SeqRead,
            region_units,
            4096,
            SimRng::from_seed(1),
        );
        let mut seen = vec![false; region_units as usize];
        for _ in 0..region_units {
            seen[pattern.next_op().lba as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Issue/complete bookkeeping never exceeds the queue depth and
    /// conserves counts.
    #[test]
    fn job_state_conserves_counts(depth in 1u32..32, ops in 1u32..500) {
        let spec = JobSpec::paper_default(0)
            .iodepth_n(depth)
            .runtime(SimDuration::secs(3_600))
            .clone();
        let mut job = JobState::new(spec, SimTime::ZERO, SimRng::from_seed(2));
        let mut completed = 0u64;
        let now = SimTime::ZERO;
        for i in 0..ops {
            if job.can_issue(now) {
                job.issue(now);
            }
            prop_assert!(job.inflight() <= depth);
            if i % 3 == 0 && job.inflight() > 0 {
                job.complete(30_000);
                completed += 1;
            }
        }
        prop_assert_eq!(job.report().completed(), completed);
        prop_assert_eq!(
            job.issued(),
            completed + job.inflight() as u64
        );
    }
}
