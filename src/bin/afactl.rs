//! `afactl` — command-line driver for the AFA latency laboratory.
//!
//! ```text
//! afactl list
//! afactl exp <name> [--ssds N] [--seconds F] [--seed N] [--json] [--plan] [--out DIR]
//! afactl run     [--ssds N] [--stage S] [--seconds F] [--seed N] [--engine E]
//! afactl ladder  [--ssds N] [--seconds F] [--seed N]
//! afactl profile [--ssds N] [--seconds F] [--seed N] [--sigmas F]
//! afactl causes  [--ssds N] [--stage S] [--seconds F] [--seed N]
//! afactl jobfile <path> [--stage S] [--seed N]
//! ```
//!
//! `list` prints the experiment registry; `exp` runs one registered
//! experiment and prints its table plus run manifest (`--json` emits
//! the machine-readable artifact on stdout instead; `--out DIR` writes
//! `<name>.{txt,csv,json}` under `DIR`).
//!
//! Stages: `default`, `chrt`, `isolcpus`, `irq`, `exp-firmware`.
//! Engines: `libaio`, `sync`, `polling`.

use std::process::ExitCode;

use afa::core::experiment::{self, root_cause, ExperimentScale};
use afa::core::profiler::ParallelProfiler;
use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::SimDuration;
use afa::stats::NinesPoint;
use afa::workload::IoEngine;

/// Parsed command-line options.
struct Options {
    ssds: usize,
    stage: TuningStage,
    seconds: f64,
    seed: u64,
    engine: IoEngine,
    sigmas: f64,
    json: bool,
    /// Echo the resolved shard-partition plan to stderr (exp only).
    plan: bool,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            ssds: 8,
            stage: TuningStage::IrqAffinity,
            seconds: 1.0,
            seed: 42,
            engine: IoEngine::Libaio,
            sigmas: 3.0,
            json: false,
            plan: false,
            out: None,
        }
    }
}

fn parse_stage(s: &str) -> Option<TuningStage> {
    TuningStage::ALL.into_iter().find(|t| t.label() == s)
}

fn parse_engine(s: &str) -> Option<IoEngine> {
    match s {
        "libaio" => Some(IoEngine::Libaio),
        "sync" => Some(IoEngine::Sync),
        "polling" => Some(IoEngine::Polling),
        _ => None,
    }
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--ssds" => {
                opts.ssds = value()?.parse().map_err(|e| format!("--ssds: {e}"))?;
                if !(1..=64).contains(&opts.ssds) {
                    return Err("--ssds must be 1..=64".into());
                }
            }
            "--stage" => {
                let v = value()?;
                opts.stage = parse_stage(v).ok_or_else(|| format!("unknown stage '{v}'"))?;
            }
            "--seconds" => {
                opts.seconds = value()?.parse().map_err(|e| format!("--seconds: {e}"))?;
                if !(0.01..=600.0).contains(&opts.seconds) {
                    return Err("--seconds must be 0.01..=600".into());
                }
            }
            "--seed" => {
                opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--engine" => {
                let v = value()?;
                opts.engine = parse_engine(v).ok_or_else(|| format!("unknown engine '{v}'"))?;
            }
            "--sigmas" => {
                opts.sigmas = value()?.parse().map_err(|e| format!("--sigmas: {e}"))?;
            }
            "--json" => opts.json = true,
            "--plan" => opts.plan = true,
            "--out" => opts.out = Some(value()?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: afactl <list|exp <name>|run|ladder|profile|causes|jobfile <path>> [options]\n\
         options: --ssds N --stage <default|chrt|isolcpus|irq|exp-firmware>\n\
         \x20        --seconds F --seed N --engine <libaio|sync|polling> --sigmas F\n\
         \x20        --json --plan --out DIR  (exp only)"
    );
}

fn config(opts: &Options) -> AfaConfig {
    AfaConfig::paper(opts.stage)
        .with_ssds(opts.ssds)
        .with_runtime(SimDuration::from_secs_f64(opts.seconds))
        .with_seed(opts.seed)
        .with_engine(opts.engine)
}

fn cmd_run(opts: &Options) {
    let config = config(opts);
    let result = AfaSystem::run(&config);
    for (d, report) in result.reports.iter().enumerate() {
        println!("{}", report.to_fio_style(&format!("nvme{d}")));
    }
    println!(
        "aggregate: {:.0} IOPS, {:.2} GB/s, {} interrupts ({} remote)",
        result.aggregate_iops(config.runtime),
        result.aggregate_gbps(config.runtime),
        result.host.stats().irqs,
        result.host.stats().remote_irqs
    );
}

fn cmd_ladder(opts: &Options) {
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "stage", "avg(us)", "p99.999(us)", "max(us)"
    );
    for stage in TuningStage::ALL {
        let config = AfaConfig::paper(stage)
            .with_ssds(opts.ssds)
            .with_runtime(SimDuration::from_secs_f64(opts.seconds))
            .with_seed(opts.seed);
        let result = AfaSystem::run(&config);
        let mut avg = 0.0;
        let mut p5 = 0.0f64;
        let mut max = 0.0f64;
        for report in &result.reports {
            let p = report.profile();
            avg += p.get_micros(NinesPoint::Average);
            p5 = p5.max(p.get_micros(NinesPoint::Nines5));
            max = max.max(p.get_micros(NinesPoint::Max));
        }
        avg /= result.reports.len() as f64;
        println!("{:<14} {avg:>10.1} {p5:>12.1} {max:>10.1}", stage.label());
    }
}

fn cmd_profile(opts: &Options) {
    let batch = ParallelProfiler::new(
        opts.ssds,
        SimDuration::from_secs_f64(opts.seconds),
        opts.seed,
    )
    .threshold_sigmas(opts.sigmas)
    .run();
    println!("{}", batch.to_table());
    println!("outliers: {:?}", batch.outliers());
}

fn cmd_causes(opts: &Options) {
    let scale = ExperimentScale::new(
        SimDuration::from_secs_f64(opts.seconds),
        opts.ssds,
        opts.seed,
    );
    println!("{}", root_cause(opts.stage, scale).to_table());
}

fn cmd_list() {
    println!("{:<20} {:<12} description", "name", "stage");
    for def in experiment::registry() {
        println!(
            "{:<20} {:<12} {}",
            def.name,
            def.stage.map_or("(multi)", afa::core::TuningStage::label),
            def.description
        );
    }
}

fn cmd_exp(name: &str, opts: &Options) -> ExitCode {
    let Some(def) = experiment::find(name) else {
        eprintln!("afactl: unknown experiment '{name}' (see `afactl list`)");
        return ExitCode::FAILURE;
    };
    let scale = ExperimentScale::new(
        SimDuration::from_secs_f64(opts.seconds),
        opts.ssds,
        opts.seed,
    );
    if opts.plan {
        // Which shard topology the run resolves to (stderr, like the
        // wall clock, so `--json` stdout stays a pure artifact).
        let threads = std::env::var("AFA_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1usize);
        eprintln!("{}", afa::core::partition::plan_summary(opts.ssds, threads));
    }
    let run = experiment::run_experiment(def, scale);
    if opts.json {
        println!("{}", run.to_json());
    } else {
        println!("{}", run.result.to_table());
        println!("{}", run.manifest.to_table());
    }
    // Wall-clock goes to stderr so `--json` stdout stays a pure,
    // reproducible artifact.
    eprintln!("wall: {:.2}s", run.manifest.wall.as_secs_f64());
    if let Some(out) = &opts.out {
        let dir = std::path::Path::new(out);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("afactl: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let artifacts = [
            ("txt", run.result.to_table()),
            ("csv", run.result.to_csv()),
            ("json", run.to_json().to_string()),
        ];
        for (ext, content) in artifacts {
            let path = dir.join(format!("{name}.{ext}"));
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("afactl: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_jobfile(path: &str, opts: &Options) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("afactl: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = match afa::workload::parse_jobfile(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("afactl: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("parsed {} job(s) from {path}", jobs.len());
    let config = AfaConfig::paper(opts.stage)
        .with_seed(opts.seed)
        .with_jobs(jobs);
    let result = AfaSystem::run(&config);
    for (j, report) in result.reports.iter().enumerate() {
        println!("{}", report.to_fio_style(&format!("job{j}")));
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    if command == "list" {
        cmd_list();
        return ExitCode::SUCCESS;
    }
    // `exp` takes a positional experiment name before the flags.
    if command == "exp" {
        let Some(name) = args.get(1) else {
            eprintln!("afactl: exp needs an experiment name (see `afactl list`)");
            usage();
            return ExitCode::FAILURE;
        };
        let opts = match parse(&args[2..]) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("afactl: {e}");
                usage();
                return ExitCode::FAILURE;
            }
        };
        return cmd_exp(name, &opts);
    }
    // `jobfile` takes a positional path before the flags.
    if command == "jobfile" {
        let Some(path) = args.get(1) else {
            eprintln!("afactl: jobfile needs a path");
            usage();
            return ExitCode::FAILURE;
        };
        let opts = match parse(&args[2..]) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("afactl: {e}");
                usage();
                return ExitCode::FAILURE;
            }
        };
        return cmd_jobfile(path, &opts);
    }
    let opts = match parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("afactl: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    match command.as_str() {
        "run" => cmd_run(&opts),
        "ladder" => cmd_ladder(&opts),
        "profile" => cmd_profile(&opts),
        "causes" => cmd_causes(&opts),
        other => {
            eprintln!("afactl: unknown command '{other}'");
            usage();
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
