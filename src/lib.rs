//! Facade crate for the AFA reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can write `use afa::...`. See the individual
//! crates for full documentation:
//!
//! * [`sim`] — discrete-event simulation substrate,
//! * [`stats`] — latency histograms, percentiles, summaries,
//! * [`ssd`] — NVMe SSD device model (flash, FTL, firmware, SMART),
//! * [`pcie`] — PCIe Gen3 switch-fabric model,
//! * [`host`] — host/OS model (CPUs, scheduler, IRQs, kernel knobs),
//! * [`workload`] — fio-like workload engine,
//! * [`volume`] — striped-volume (RAID-0) layer,
//! * [`frontend`] — client-request serving layer (open-loop arrivals,
//!   tenant QoS, striped fan-out, hedged reads, SLO accounting),
//! * [`fleet`] — replicated multi-array fleet layer (network hop,
//!   rendezvous placement, fault injection and failover),
//! * [`core`] — system assembly, tuning stages, and the paper's
//!   experiments.

#![forbid(unsafe_code)]

pub use afa_core as core;
pub use afa_fleet as fleet;
pub use afa_frontend as frontend;
pub use afa_host as host;
pub use afa_pcie as pcie;
pub use afa_sim as sim;
pub use afa_ssd as ssd;
pub use afa_stats as stats;
pub use afa_volume as volume;
pub use afa_workload as workload;
