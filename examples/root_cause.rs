//! Where does the latency go? Attribute every nanosecond of the
//! completion path to its cause — the simulated version of the paper's
//! LTTng analysis — for the stock kernel vs. the fully tuned one.
//!
//! ```sh
//! cargo run --release --example root_cause
//! ```

use afa::core::experiment::{root_cause, ExperimentScale};
use afa::core::TuningStage;
use afa::sim::SimDuration;

fn main() {
    let scale = ExperimentScale::new(SimDuration::millis(500), 8, 42);
    for stage in [TuningStage::Default, TuningStage::IrqAffinity] {
        let report = root_cause(stage, scale);
        println!("{}", report.to_table());
        if let Some(dominant) = report.dominant() {
            println!("dominant cause: {dominant}\n");
        }
    }
    println!(
        "expected: under 'default' the scheduler delay and C-state exits add\n\
         microseconds per I/O on average (and milliseconds in the tail);\n\
         under 'irq' the budget is almost pure device service + fabric."
    );
}
