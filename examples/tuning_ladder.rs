//! The paper's story in one run: walk the §IV tuning ladder —
//! default → chrt → isolcpus → irq affinity → experimental firmware —
//! and watch the worst-case latency collapse from milliseconds to
//! double-digit microseconds.
//!
//! ```sh
//! cargo run --release --example tuning_ladder
//! ```

use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::SimDuration;
use afa::stats::NinesPoint;

fn main() {
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10}",
        "stage", "avg(us)", "p99.9(us)", "p99.999(us)", "max(us)"
    );
    for stage in TuningStage::ALL {
        let config = AfaConfig::paper(stage)
            .with_ssds(16)
            .with_runtime(SimDuration::secs(2))
            .with_seed(42);
        let result = AfaSystem::run(&config);

        // Worst device decides the array's responsiveness (§I: one
        // slow SSD delays the whole striped request).
        let mut avg = 0.0;
        let mut p999 = 0.0f64;
        let mut p5 = 0.0f64;
        let mut max = 0.0f64;
        for report in &result.reports {
            let profile = report.profile();
            avg += profile.get_micros(NinesPoint::Average);
            p999 = p999.max(profile.get_micros(NinesPoint::Nines3));
            p5 = p5.max(profile.get_micros(NinesPoint::Nines5));
            max = max.max(profile.get_micros(NinesPoint::Max));
        }
        avg /= result.reports.len() as f64;
        println!(
            "{:<14} {avg:>10.1} {p999:>10.1} {p5:>12.1} {max:>10.1}",
            stage.label()
        );
    }
    println!("\npaper: default max ~5000us, chrt ~600us, exp firmware ~90us");
}
