//! The §V/§VI profiling framework: characterize a fleet of SSDs in
//! parallel (the paper: "x10 or even x100 faster ... using a single
//! host server") and flag latency outliers — e.g. from a bad daily
//! firmware build.
//!
//! ```sh
//! cargo run --release --example profile_fleet
//! ```

use afa::core::profiler::ParallelProfiler;
use afa::sim::SimDuration;
use afa::stats::LatencyProfile;

fn main() {
    // A healthy batch measured live on the simulated array.
    let profiler = ParallelProfiler::new(16, SimDuration::millis(500), 42);
    let batch = profiler.run();
    println!("{}", batch.to_table());
    println!("outliers: {:?}\n", batch.outliers());

    // The same detector applied to a stored dataset where one device
    // regressed (a lemon from a bad firmware drop).
    let mut stored: Vec<LatencyProfile> =
        batch.verdicts.iter().map(|v| v.profile.clone()).collect();
    stored.push(LatencyProfile::from_values(
        [
            40_000, 45_000, 90_000, 400_000, 2_000_000, 4_900_000, 5_100_000,
        ],
        1_000_000,
    ));
    let judged = profiler.threshold_sigmas(2.5).judge(stored);
    println!("{}", judged.to_table());
    println!("regressed devices: {:?}", judged.outliers());
}
