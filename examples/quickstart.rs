//! Quickstart: build a small all-flash array, run the paper's 4 KiB
//! random-read workload under the fully tuned kernel, and print
//! fio-style per-device reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::SimDuration;

fn main() {
    // 8 SSDs, 1 simulated second, the §IV-D tuning (chrt + isolcpus +
    // pinned IRQ vectors, production firmware).
    let config = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_ssds(8)
        .with_runtime(SimDuration::secs(1))
        .with_seed(7);

    println!(
        "running {} SSDs for {:.1}s simulated under '{}' tuning...\n",
        config.geometry.ssds(),
        config.runtime.as_secs_f64(),
        config.tuning.stage()
    );
    let result = AfaSystem::run(&config);

    for (device, report) in result.reports.iter().enumerate() {
        println!("{}", report.to_fio_style(&format!("nvme{device}")));
    }

    println!(
        "aggregate: {:.0} IOPS, {:.2} GB/s ({} interrupts, {} of them remote)",
        result.aggregate_iops(config.runtime),
        result.aggregate_gbps(config.runtime),
        result.host.stats().irqs,
        result.host.stats().remote_irqs,
    );
}
