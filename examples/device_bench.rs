//! Drive a single simulated NVMe SSD directly through its command
//! interface: format to FOB, sweep queue depths, read the SMART log.
//!
//! ```sh
//! cargo run --release --example device_bench
//! ```

use afa::sim::{SimDuration, SimTime};
use afa::ssd::{FirmwareProfile, NvmeCommand, SsdDevice, SsdSpec};

fn main() {
    let mut dev = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), 1);
    println!(
        "device: {} GB, {} ({})",
        dev.spec().capacity_gb,
        dev.spec().interface,
        dev.firmware().version()
    );

    // NVMe Format → FOB state, like the paper does before every run.
    let fmt = dev.submit(SimTime::ZERO, NvmeCommand::format());
    let mut now = fmt.completes_at;
    println!(
        "formatted to FOB in {:.0} ms\n",
        fmt.service.as_secs_f64() * 1e3
    );

    // Queue-depth sweep of 4 KiB random reads.
    println!("{:<6} {:>12} {:>14}", "QD", "IOPS", "mean lat (us)");
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let horizon = now + SimDuration::millis(200);
        let mut inflight = vec![now; depth];
        let mut done = 0u64;
        let mut lat_sum = 0.0;
        let mut lba = 0u64;
        loop {
            let (idx, &t) = inflight
                .iter()
                .enumerate()
                .min_by_key(|&(_, t)| *t)
                .expect("non-empty");
            if t >= horizon {
                break;
            }
            lba = (lba + 7_919) % 1_000_000;
            let info = dev.submit(t, NvmeCommand::read(lba, 4096));
            lat_sum += info.latency_since(t).as_micros_f64();
            inflight[idx] = info.completes_at;
            done += 1;
        }
        println!(
            "{depth:<6} {:>12.0} {:>14.1}",
            done as f64 / 0.2,
            lat_sum / done as f64
        );
        now = horizon;
    }

    // Read back SMART via GetLogPage semantics.
    let log = dev.smart_log();
    println!(
        "\nSMART: {} host reads, {} data units read, {} retries, {} housekeeping stalls",
        log.host_reads, log.data_units_read, log.media_retries, log.housekeeping_stalls
    );
}
