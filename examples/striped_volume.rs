//! The §I motivation, hands-on: a RAID-0 volume over the array, where
//! every client request completes at the speed of its *slowest*
//! member — so one SSD's tail becomes everyone's tail.
//!
//! ```sh
//! cargo run --release --example striped_volume
//! ```

use afa::core::experiment::{tail_at_scale, ExperimentScale};
use afa::sim::SimDuration;
use afa::volume::{StripeConfig, StripedVolume};

fn main() {
    // The address math itself: a 256 KiB read over an 8-wide volume.
    let volume = StripedVolume::new((0..8).collect(), StripeConfig::new(65_536));
    println!("a 256 KiB read at volume page 0 splits into:");
    for sub in volume.map_read(0, 262_144) {
        println!(
            "  member {} (device {:2}): lba {:4}, {:3} KiB",
            sub.member,
            volume.member_device(sub.member),
            sub.lba,
            sub.bytes / 1024
        );
    }

    // And the consequence: client p99/p99.9 vs stripe width, stock
    // kernel vs the paper's tuned kernel.
    println!("\nrunning the tail-at-scale sweep (this takes a moment)...\n");
    let scale = ExperimentScale::new(SimDuration::millis(800), 16, 42);
    println!("{}", tail_at_scale(scale).to_table());
    println!(
        "the wider the stripe, the more the per-SSD tail amplifies —\n\
         unless the kernel is tuned (the paper's point, quantified)."
    );
}
