#!/usr/bin/env python3
"""Plot the CSV artifacts the bench harness writes to target/afa-results/.

Usage:
    python3 scripts/plot_figures.py [target/afa-results] [out_dir]

Produces, for whichever inputs exist:
  * fig06/07/08/09/11 — per-device latency-distribution line plots
    (one line per SSD, log-y), the visual form of the paper's figures,
  * fig10 — the latency scatter with its periodic SMART spikes,
  * fig12 — grouped bars of mean and std per metric per configuration.

Requires matplotlib; degrades to a message if it is missing.
"""

import csv
import os
import sys


def load_rows(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def plot_distributions(plt, rows, title, out):
    points = ["avg", "p99", "p999", "p9999", "p99999", "p999999", "max"]
    labels = ["avg", "99%", "99.9%", "99.99%", "99.999%", "99.9999%", "max"]
    fig, ax = plt.subplots(figsize=(7, 4))
    for row in rows:
        ys = [float(row[p]) for p in points]
        ax.plot(labels, ys, linewidth=0.7, alpha=0.6)
    ax.set_yscale("log")
    ax.set_ylabel("latency (us)")
    ax.set_title(title)
    ax.grid(True, which="both", alpha=0.3)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_scatter(plt, rows, out):
    fig, ax = plt.subplots(figsize=(8, 4))
    xs = [int(r["index"]) for r in rows]
    ys = [float(r["latency_us"]) for r in rows]
    ax.scatter(xs, ys, s=1, alpha=0.4)
    ax.set_xlabel("sample index")
    ax.set_ylabel("latency (us)")
    ax.set_title("Fig. 10 — latency samples (SMART spikes)")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_fig12(plt, rows, out):
    stages = []
    for r in rows:
        if r["stage"] not in stages:
            stages.append(r["stage"])
    metrics = []
    for r in rows:
        if r["metric"] not in metrics:
            metrics.append(r["metric"])
    fig, axes = plt.subplots(1, 2, figsize=(11, 4))
    for ax, field, title in ((axes[0], "mean_us", "average (us)"),
                             (axes[1], "std_us", "standard deviation (us)")):
        width = 0.8 / max(len(stages), 1)
        for i, stage in enumerate(stages):
            vals = [float(r[field]) for r in rows if r["stage"] == stage]
            xs = [j + i * width for j in range(len(metrics))]
            ax.bar(xs, [max(v, 0.01) for v in vals], width=width, label=stage)
        ax.set_yscale("log")
        ax.set_xticks([j + 0.4 for j in range(len(metrics))])
        ax.set_xticklabels(metrics, rotation=30)
        ax.set_title(title)
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; CSVs remain usable directly")
        return 1

    src = sys.argv[1] if len(sys.argv) > 1 else "target/afa-results"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else src
    os.makedirs(out_dir, exist_ok=True)

    titles = {
        "fig06": "Fig. 6 — default configuration",
        "fig07": "Fig. 7 — +chrt",
        "fig08": "Fig. 8 — +isolcpus",
        "fig09": "Fig. 9 — +IRQ affinity",
        "fig11": "Fig. 11 — experimental firmware",
        "fig13a": "Fig. 13(a)", "fig13b": "Fig. 13(b)",
        "fig13c": "Fig. 13(c)", "fig13d": "Fig. 13(d)",
    }
    for name, title in titles.items():
        path = os.path.join(src, f"{name}.csv")
        if os.path.exists(path):
            plot_distributions(plt, load_rows(path), title,
                               os.path.join(out_dir, f"{name}.png"))
    p10 = os.path.join(src, "fig10.csv")
    if os.path.exists(p10):
        plot_scatter(plt, load_rows(p10), os.path.join(out_dir, "fig10.png"))
    p12 = os.path.join(src, "fig12.csv")
    if os.path.exists(p12):
        plot_fig12(plt, load_rows(p12), os.path.join(out_dir, "fig12.png"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
