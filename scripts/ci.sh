#!/usr/bin/env bash
# Offline CI gate: build, test, format, and smoke-test the CLI.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> afactl list smoke"
listing="$(./target/release/afactl list)"
count="$(printf '%s\n' "$listing" | tail -n +2 | wc -l)"
if [ "$count" -lt 20 ]; then
    echo "afactl list: expected at least 20 experiments, got $count" >&2
    exit 1
fi
echo "afactl list: $count experiments registered"

echo "CI OK"
