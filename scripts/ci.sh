#!/usr/bin/env bash
# Offline CI gate: build, lint, test, format, and smoke-test the CLI.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> afactl list smoke"
listing="$(./target/release/afactl list)"
count="$(printf '%s\n' "$listing" | tail -n +2 | wc -l)"
if [ "$count" -lt 20 ]; then
    echo "afactl list: expected at least 20 experiments, got $count" >&2
    exit 1
fi
echo "afactl list: $count experiments registered"

echo "==> golden artifact byte-compare (scaled fig06-fig13 + request-serving)"
# Doubles as the experiment smoke test: regenerates the figure
# artifacts (plus the frontend request-serving experiments) at a
# reduced scale and byte-compares them against the committed fixtures.
# Any change in event ordering, RNG streams, model behaviour or JSON
# schema shows up here as a diff.
golden_tmp="$(mktemp -d)"
trap 'rm -rf "$golden_tmp"' EXIT
for fig in fig06 fig07 fig08 fig09 fig10 fig11 fig12 fig13 tailscale-fanout tailscale-hedge fleet-arrival fleet-failover ull-crossover; do
    ./target/release/afactl exp "$fig" --seconds 0.25 --ssds 8 --seed 42 \
        --json > "$golden_tmp/$fig.json"
    if ! cmp -s "tests/golden/$fig.json" "$golden_tmp/$fig.json"; then
        echo "golden mismatch: $fig artifact differs from tests/golden/$fig.json" >&2
        echo "(if the change is intentional, regenerate the fixture with:" >&2
        echo "  ./target/release/afactl exp $fig --seconds 0.25 --ssds 8 --seed 42 --json > tests/golden/$fig.json)" >&2
        exit 1
    fi
    # A healthy model never schedules into the past; the manifest
    # serializes the clamp counter precisely so CI can refuse drift.
    if ! grep -q '"clamped_past_schedules":0' "$golden_tmp/$fig.json"; then
        echo "clamped past-time schedules in $fig run:" >&2
        grep -o '"clamped_past_schedules":[0-9]*' "$golden_tmp/$fig.json" >&2
        exit 1
    fi
    echo "golden OK: $fig"
done

echo "==> partition-plan byte-compare (fig06 + fleet-arrival + fleet-failover + ull-crossover under single/fused-4/full-9 x 1/4 threads)"
# The partition plan and the thread count must both be invisible in
# the artifacts: the 9-LP decomposition is part of the deterministic
# merge contract, so every fusion level — from the fully-fused
# single-wheel fast path to one shard per LP — has to produce
# byte-identical JSON, sequential or threaded. fleet-arrival drives
# its own single-world loop (the SequentialGuard pins it), so for it
# the matrix asserts the env knobs stay invisible end to end.
for exp in fig06 fleet-arrival fleet-failover ull-crossover; do
    for plan in single fused-4 full-9; do
        for threads in 1 4; do
            AFA_SHARD_PLAN=$plan AFA_THREADS=$threads \
                ./target/release/afactl exp "$exp" --seconds 0.25 --ssds 8 --seed 42 \
                --json > "$golden_tmp/$exp-$plan-$threads.json"
            if ! cmp -s "tests/golden/$exp.json" "$golden_tmp/$exp-$plan-$threads.json"; then
                echo "plan mismatch: $exp under AFA_SHARD_PLAN=$plan AFA_THREADS=$threads differs from the golden" >&2
                exit 1
            fi
        done
        echo "plan OK: $exp ($plan at 1 and 4 threads == golden)"
    done
done

echo "==> fusion on/off byte-compare (fig06 + ull-crossover)"
# The macro-event fusion fast path must be invisible in the artifacts:
# AFA_NO_FUSION=1 forces every chain down the per-stage path, and the
# JSON must not move by a byte. fig06 covers the interrupt chain,
# ull-crossover covers the polled and hybrid reap chains.
for exp in fig06 ull-crossover; do
    AFA_NO_FUSION=1 ./target/release/afactl exp "$exp" --seconds 0.25 --ssds 8 --seed 42 \
        --json > "$golden_tmp/$exp-nofusion.json"
    if ! cmp -s "tests/golden/$exp.json" "$golden_tmp/$exp-nofusion.json"; then
        echo "fusion mismatch: $exp under AFA_NO_FUSION=1 differs from the golden" >&2
        exit 1
    fi
    echo "fusion OK: $exp (AFA_NO_FUSION=1 == golden)"
done

echo "==> desperf regression check (pinned-scale fig06 events/sec + event-count budget)"
# Fails if DES throughput fell more than 10% below the most recent
# committed BENCH_desperf.json entry, and (via the event-fusion gate)
# if the pinned fusion probe schedules more than 4 events per latency
# sample — the event-count budget that keeps the macro-event fast
# path honest next to the events/sec floor.
./target/release/desperf --check

echo "CI OK"
