//! Smoke tests for every experiment runner: each regenerates its
//! artifact at test scale without panicking and with sane structure.

use afa::core::experiment::{
    ablate_gc, ablate_poll, fig10, fig12, fig6, table1, table2, ExperimentScale,
};
use afa::core::profiler::ParallelProfiler;
use afa::core::Table2Row;
use afa::sim::SimDuration;
use afa::stats::NinesPoint;

#[test]
fn table1_ratios_within_tolerance() {
    let t = table1(42);
    for (metric, rated, measured) in &t.rows {
        let ratio = measured / rated;
        assert!(
            (0.75..1.30).contains(&ratio),
            "{metric}: rated {rated} vs measured {measured}"
        );
    }
}

#[test]
fn table2_lists_all_rows() {
    let text = table2();
    for row in Table2Row::ALL {
        assert!(text.contains(row.label()), "missing {row:?}");
    }
}

#[test]
fn fig6_runner_produces_consistent_artifacts() {
    let scale = ExperimentScale::quick();
    let fig = fig6(scale);
    assert_eq!(fig.profiles.len(), scale.ssds);
    let csv = fig.to_csv();
    assert_eq!(csv.lines().count(), scale.ssds + 1);
    // The summary's max row must bound every device.
    let hi = fig.summary.get(NinesPoint::Max).max_us;
    for p in &fig.profiles {
        assert!(p.get_micros(NinesPoint::Max) <= hi + 1e-9);
    }
}

#[test]
fn fig10_runner_logs_samples() {
    let scatter = fig10(ExperimentScale::new(SimDuration::millis(80), 4, 42));
    assert_eq!(scatter.points_per_device.len(), 4);
    assert!(scatter.mean_latency_ns > 20_000.0);
    assert!(scatter.to_table().contains("Fig. 10"));
}

#[test]
fn fig12_improvements_are_positive() {
    let cmp = fig12(ExperimentScale::new(SimDuration::millis(250), 8, 42));
    assert!(cmp.mean_max_improvement() > 1.0);
    assert!(cmp.std_max_improvement() >= 0.0);
    let default_max = cmp.mean_max_us(afa::core::TuningStage::Default);
    let tuned_max = cmp.mean_max_us(afa::core::TuningStage::IrqAffinity);
    assert!(default_max > tuned_max);
}

#[test]
fn gc_ablation_shows_aging() {
    let r = ablate_gc(7);
    assert!(r.gc_cycles > 0);
    assert!(r.aged_write_amplification > 1.0);
}

#[test]
fn poll_ablation_reports_two_engines() {
    let r = ablate_poll(ExperimentScale::new(SimDuration::millis(100), 2, 42));
    assert_eq!(r.rows.len(), 2);
    assert!(r.to_table().contains("polling"));
}

#[test]
fn profiler_flags_injected_lemon() {
    let profiler = ParallelProfiler::new(6, SimDuration::millis(100), 42).threshold_sigmas(2.5);
    let batch = profiler.run();
    assert_eq!(batch.verdicts.len(), 6);
    let mut profiles: Vec<_> = batch.verdicts.iter().map(|v| v.profile.clone()).collect();
    profiles.push(afa::stats::LatencyProfile::from_values(
        [5_000_000; 7],
        100_000,
    ));
    let judged = profiler.judge(profiles);
    assert!(judged.outliers().contains(&6));
}
