//! End-to-end: a fio-style jobfile drives the whole-array simulation.

use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::SimDuration;
use afa::workload::parse_jobfile;

const JOBFILE: &str = "\
[global]
ioengine=libaio
rw=randread
bs=4k
iodepth=1
runtime=0.08

[a]
filename=/dev/nvme0
cpus_allowed=4

[b]
filename=/dev/nvme1
cpus_allowed=5

[c]
filename=/dev/nvme2
cpus_allowed=17
";

#[test]
fn jobfile_runs_end_to_end() {
    let jobs = parse_jobfile(JOBFILE).expect("parse");
    assert_eq!(jobs.len(), 3);
    let config = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_seed(11)
        .with_jobs(jobs);
    let result = AfaSystem::run(&config);
    assert_eq!(result.reports.len(), 3);
    for report in &result.reports {
        assert!(report.completed() > 1_000, "{} I/Os", report.completed());
        let mean = report.histogram().mean() / 1e3;
        assert!((28.0..45.0).contains(&mean), "mean {mean} us");
    }
}

#[test]
fn jobfile_pinning_is_honored() {
    let jobs = parse_jobfile(JOBFILE).expect("parse");
    let config = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_seed(12)
        .with_jobs(jobs);
    // Geometry resolution happens in run(); if the pinned CPUs were
    // ignored, the vectors (designated = assignment) would differ and
    // pinned-IRQ stats would show remote deliveries.
    let result = AfaSystem::run(&config);
    assert_eq!(result.host.stats().remote_irqs, 0);
}

#[test]
fn heterogeneous_jobfile_mixes_engines() {
    let text = "\
[poll]
filename=/dev/nvme0
cpus_allowed=4
ioengine=pvsync2_hipri
runtime=0.05

[irqd]
filename=/dev/nvme1
cpus_allowed=5
ioengine=libaio
runtime=0.05
";
    let jobs = parse_jobfile(text).expect("parse");
    let config = AfaConfig::paper(TuningStage::ExperimentalFirmware)
        .with_seed(13)
        .with_jobs(jobs);
    let result = AfaSystem::run(&config);
    // Only the libaio job generates interrupts.
    let libaio_ios = result.reports[1].completed();
    assert!(result.host.stats().irqs >= libaio_ios);
    assert!(result.host.stats().irqs < libaio_ios + 100);
    assert!(result.reports[0].completed() > 500);
}

#[test]
#[should_panic(expected = "two jobs target device")]
fn duplicate_device_jobs_panic() {
    let text = "\
[a]
filename=/dev/nvme0
[b]
filename=/dev/nvme0
";
    let jobs = parse_jobfile(text).expect("parse");
    let config = AfaConfig::paper(TuningStage::Default)
        .with_runtime(SimDuration::millis(10))
        .with_jobs(jobs);
    let _ = AfaSystem::run(&config);
}
