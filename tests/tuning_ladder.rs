//! The paper's headline claim, end to end: each rung of the tuning
//! ladder makes the worst-case latency no worse.
//!
//! Fig. 6–11 walk Default → chrt → isolcpus → IRQ affinity →
//! experimental firmware, and every step cuts (or at worst holds) the
//! maximum read latency. Parameters are pinned — if a model change
//! breaks monotonicity here, either the change is wrong or the new
//! ladder must be re-verified and this test updated in the same
//! commit.

use afa::core::experiment::{run_stage, ExperimentScale};
use afa::core::TuningStage;
use afa::sim::SimDuration;

#[test]
fn ladder_worst_case_latency_is_monotonically_non_increasing() {
    let scale = ExperimentScale::new(SimDuration::millis(300), 8, 42);
    let mut previous: Option<(TuningStage, f64)> = None;
    for stage in TuningStage::ALL {
        let worst = run_stage(stage, scale).worst_max_us();
        assert!(worst > 0.0, "{stage} produced no latency samples");
        if let Some((prev_stage, prev_worst)) = previous {
            assert!(
                worst <= prev_worst,
                "'{stage}' regressed the worst case: {prev_worst:.1} us \
                 at '{prev_stage}' -> {worst:.1} us"
            );
        }
        previous = Some((stage, worst));
    }
    // The full ladder must deliver a large win, not a wash (the paper
    // reports ~2770 us -> ~35 us at full scale).
    let (_, final_worst) = previous.unwrap();
    let default_worst = run_stage(TuningStage::Default, scale).worst_max_us();
    assert!(
        final_worst < default_worst / 10.0,
        "full tuning only got {default_worst:.1} -> {final_worst:.1} us"
    );
}
