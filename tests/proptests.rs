//! Cross-crate property tests over the whole system, on the
//! first-party [`afa_sim::check`] harness.
//!
//! These runs simulate whole arrays and are comparatively heavy, so
//! the suite is gated behind the `proptest` cargo feature:
//!
//! ```text
//! cargo test --features proptest --test proptests
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use afa::core::partition::plan_for;
use afa::core::{
    AfaConfig, AfaSystem, FusionOverride, PlanOverride, PlanSpec, ThreadsOverride, TuningStage,
};
use afa::sim::check::run_cases;
use afa::sim::{EventQueue, ShardCtx, ShardWorld, ShardedSim, SimDuration, SimTime};
use afa::stats::NinesPoint;

/// For any seed and small device count, the system completes I/O on
/// every device, latencies are at least the physical floor (device
/// ~25 µs + fabric), and percentile profiles are monotone.
#[test]
fn runs_are_sane_for_any_seed() {
    run_cases("runs_are_sane_for_any_seed", 8, |g| {
        let seed = g.u64_in(0, 10_000);
        let ssds = g.usize_in(1, 6);
        let result = AfaSystem::run(
            &AfaConfig::paper(TuningStage::IrqAffinity)
                .with_ssds(ssds)
                .with_runtime(SimDuration::millis(40))
                .with_seed(seed),
        );
        assert_eq!(result.reports.len(), ssds);
        for report in &result.reports {
            assert!(report.completed() > 300, "{} I/Os", report.completed());
            let profile = report.profile();
            assert!(profile.get_micros(NinesPoint::Average) > 25.0);
            let pts = [
                NinesPoint::Nines2,
                NinesPoint::Nines3,
                NinesPoint::Nines4,
                NinesPoint::Nines5,
                NinesPoint::Nines6,
                NinesPoint::Max,
            ];
            for w in pts.windows(2) {
                assert!(profile.get(w[0]) <= profile.get(w[1]));
            }
        }
    });
}

/// The binary-heap event queue the timing wheel replaced, kept here as
/// the ordering specification: pop order is `(time, insertion seq)`.
struct ReferenceHeap<E> {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    events: Vec<Option<E>>,
    seq: u64,
}

impl<E> ReferenceHeap<E> {
    fn new() -> Self {
        ReferenceHeap {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            seq: 0,
        }
    }

    fn push(&mut self, time: SimTime, event: E) {
        let slot = self.events.len() as u64;
        self.events.push(Some(event));
        self.heap.push(Reverse((time.as_nanos(), self.seq, slot)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((nanos, _, slot)) = self.heap.pop()?;
        let event = self.events[slot as usize].take().expect("slot filled once");
        Some((SimTime::from_nanos(nanos), event))
    }
}

/// The timing wheel pops events in exactly the `(time, insertion seq)`
/// order of the binary heap it replaced, for any interleaving of
/// pushes and pops and any mix of near/far/past timestamps. This is
/// the contract that keeps every registry artifact byte-identical
/// across the queue swap.
#[test]
fn timing_wheel_matches_reference_heap() {
    run_cases("timing_wheel_matches_reference_heap", 32, |g| {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: ReferenceHeap<u64> = ReferenceHeap::new();
        // Mix of event-time horizons: dense same-instant bursts,
        // device-latency gaps, and far-future housekeeping timers.
        let horizon = [0u64, 1, 1_000, 50_000, 5_000_000, 10_000_000_000][g.usize_in(0, 5)];
        let ops = g.usize_in(10, 600);
        let mut clock = 0u64; // latest popped time, to generate past pushes
        let mut id = 0u64;
        for _ in 0..ops {
            if g.bool() || wheel.is_empty() {
                let base = if g.u64_in(0, 9) == 0 {
                    // Occasionally push at/behind the popped frontier,
                    // which only the raw queue API can do.
                    clock.saturating_sub(g.u64_in(0, 1_000))
                } else {
                    clock + g.u64_in(0, horizon.max(1))
                };
                wheel.push(SimTime::from_nanos(base), id);
                heap.push(SimTime::from_nanos(base), id);
                id += 1;
            } else {
                let got = wheel.pop();
                let want = heap.pop();
                assert_eq!(
                    got.map(|(t, e)| (t.as_nanos(), e)),
                    want.map(|(t, e)| (t.as_nanos(), e)),
                );
                if let Some((t, _)) = got {
                    clock = clock.max(t.as_nanos());
                }
            }
        }
        // Drain: remaining contents must agree exactly, in order.
        loop {
            let got = wheel.pop();
            let want = heap.pop();
            assert_eq!(
                got.map(|(t, e)| (t.as_nanos(), e)),
                want.map(|(t, e)| (t.as_nanos(), e)),
            );
            if got.is_none() {
                break;
            }
        }
    });
}

/// The wheel's overflow heap — where pushes behind the popped
/// frontier land — preserves the exact global `(time, insertion seq)`
/// pop order, for any interleaving of past, near-future and far-future
/// pushes with pops. [`timing_wheel_matches_reference_heap`] compares
/// two queue implementations; this pins the order itself against a
/// from-scratch model (the `(time, seq)`-minimum of the queued set),
/// so a matching bug in both implementations can't hide. Past pushes
/// are over-weighted relative to real workloads precisely to keep the
/// overflow heap populated while the wheel cascades around it.
#[test]
fn overflow_heap_drains_in_time_seq_order() {
    run_cases("overflow_heap_drains_in_time_seq_order", 32, |g| {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        // Reference: the queued set as (time, global push seq); the
        // payload IS the seq, so a pop identifies its push uniquely.
        let mut queued: Vec<(u64, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut frontier = 0u64;
        let pop_reference = |queued: &mut Vec<(u64, u64)>| {
            let at = (0..queued.len())
                .min_by_key(|&i| queued[i])
                .expect("reference non-empty");
            // swap_remove is fine: the reference orders by (time, seq),
            // not by position.
            queued.swap_remove(at)
        };
        for _ in 0..g.usize_in(20, 500) {
            if g.bool() || queued.is_empty() {
                let time = match g.usize_in(0, 3) {
                    // Behind the popped frontier: overflow-heap traffic.
                    0 => frontier.saturating_sub(g.u64_in(0, 1 << 20)),
                    // Level-0 neighborhood of the frontier.
                    1 => frontier + g.u64_in(0, 64),
                    // Mid levels: cascades on the way down.
                    2 => frontier + g.u64_in(0, 1 << 20),
                    // Top levels: far-future housekeeping horizons.
                    _ => frontier + g.u64_in(0, 1 << 40),
                };
                wheel.push(SimTime::from_nanos(time), seq);
                queued.push((time, seq));
                seq += 1;
            } else {
                let (time, id) = pop_reference(&mut queued);
                let got = wheel.pop().expect("reference says non-empty");
                assert_eq!(
                    (got.0.as_nanos(), got.1),
                    (time, id),
                    "pop left (time, seq) order"
                );
                frontier = frontier.max(time);
            }
        }
        while !queued.is_empty() {
            let (time, id) = pop_reference(&mut queued);
            let got = wheel.pop().expect("drain shorter than reference");
            assert_eq!(
                (got.0.as_nanos(), got.1),
                (time, id),
                "drain left (time, seq) order"
            );
        }
        assert!(wheel.pop().is_none(), "wheel drained more than was pushed");
    });
}

/// Every completed I/O's ledger is exactly conservative: summed over
/// causes, the post-issue contributions equal the measured completion
/// latency to the nanosecond — for any tuning stage, seed and device
/// count. This is the invariant that lets cause attribution, the
/// blktrace stage records and the per-cause budget all be derived
/// views of one [`afa::core::io_path::IoLedger`] instead of three
/// separately-maintained instrumentation paths.
///
/// This case pins the default interrupt-driven engine; the sweep
/// across completion models (busy-poll, hybrid poll) and device
/// profiles lives in [`ledger_tiles_latency_for_every_completion_model`].
#[test]
fn ledger_sums_to_completion_latency() {
    run_cases("ledger_sums_to_completion_latency", 12, |g| {
        let stage = [
            TuningStage::Default,
            TuningStage::Chrt,
            TuningStage::Isolcpus,
            TuningStage::IrqAffinity,
            TuningStage::ExperimentalFirmware,
        ][g.usize_in(0, 4)];
        let seed = g.u64_in(0, 10_000);
        let ssds = g.usize_in(1, 6);
        let result = AfaSystem::run(
            &AfaConfig::paper(stage)
                .with_ssds(ssds)
                .with_runtime(SimDuration::millis(40))
                .with_seed(seed)
                .with_ledger_log(512),
        );
        let log = result.ledgers.expect("ledger log enabled");
        assert!(!log.entries().is_empty());
        for io in log.entries() {
            let ledger = &io.ledger;
            assert_eq!(
                ledger.total() - ledger.pre_issue(),
                io.latency(),
                "device {} I/O issued at {:?}: per-cause sums drifted from \
                 the measured latency",
                io.device,
                io.issued_at,
            );
        }
    });
}

/// The ledger's conservation law is completion-model independent: for
/// any engine (interrupt, busy-poll, hybrid poll), device profile,
/// tuning stage, seed and device count, every completed I/O's
/// per-cause credits still sum exactly to the measured latency. A
/// polled reap credits only the slices no accrued cause covers — the
/// residual hybrid sleep as `poll_sleep`, the post-arrival reap as
/// `cpu_work` — so the spin window never double-books against the
/// device service it overlaps. And because no MSI-X vector fires on a
/// polled completion, the `IrqHandled` blktrace stamp stays unset.
#[test]
fn ledger_tiles_latency_for_every_completion_model() {
    use afa::core::blktrace::IoStage;
    use afa::ssd::DeviceProfile;
    use afa::workload::IoEngine;
    run_cases("ledger_tiles_latency_for_every_completion_model", 12, |g| {
        let engine = [IoEngine::Libaio, IoEngine::Polling, IoEngine::HybridPoll][g.usize_in(0, 2)];
        let profile = [DeviceProfile::Table1, DeviceProfile::UltraLowLatency][g.usize_in(0, 1)];
        let stage = [
            TuningStage::Default,
            TuningStage::Chrt,
            TuningStage::Isolcpus,
            TuningStage::IrqAffinity,
            TuningStage::ExperimentalFirmware,
        ][g.usize_in(0, 4)];
        let seed = g.u64_in(0, 10_000);
        let ssds = g.usize_in(1, 4);
        let result = AfaSystem::run(
            &AfaConfig::paper(stage)
                .with_ssds(ssds)
                .with_engine(engine)
                .with_device_profile(profile)
                .with_runtime(SimDuration::millis(40))
                .with_seed(seed)
                .with_ledger_log(512),
        );
        let log = result.ledgers.expect("ledger log enabled");
        assert!(!log.entries().is_empty());
        for io in log.entries() {
            let ledger = &io.ledger;
            assert_eq!(
                ledger.total() - ledger.pre_issue(),
                io.latency(),
                "{engine:?} on {profile:?}, device {}: per-cause sums \
                 drifted from the measured latency",
                io.device,
            );
            if engine != IoEngine::Libaio {
                assert_eq!(
                    ledger.stamp_at(IoStage::IrqHandled),
                    SimTime::ZERO,
                    "{engine:?}: polled completion recorded an IRQ stamp",
                );
            }
        }
        // The run-wide reap counters agree with the model: interrupt
        // reaps only under libaio, polled reaps only otherwise.
        let reaps = result.completions;
        match engine {
            IoEngine::Libaio => assert_eq!(reaps.polls, 0),
            _ => assert_eq!(reaps.interrupts, 0),
        }
    });
}

/// The conservative parallel engine is invisible in the artifacts: for
/// any experiment, seed, scale and worker-thread count, the threaded
/// driver serializes to exactly the bytes the sequential driver does.
/// This is the differential form of the per-figure golden fixtures —
/// the fixtures pin ten (experiment, scale) points, this samples the
/// whole space.
#[test]
fn parallel_driver_matches_sequential_bytes() {
    // Single-stage experiments keep each case to two cheap runs; fig12
    // exercises the multi-stage path (four runs per driver).
    let names = ["fig06", "fig07", "fig08", "fig09", "fig11", "fig12"];
    run_cases("parallel_driver_matches_sequential_bytes", 6, |g| {
        let def = afa::core::experiment::find(names[g.usize_in(0, names.len() - 1)])
            .expect("experiment registered");
        let scale = afa::core::experiment::ExperimentScale::new(
            SimDuration::millis(g.u64_in(10, 40)),
            g.usize_in(1, 6),
            g.u64_in(0, 10_000),
        );
        let sequential = {
            let _pin = ThreadsOverride::set(1);
            afa::core::experiment::run_experiment(def, scale)
                .to_json()
                .to_string()
        };
        let threads = g.usize_in(2, 9);
        let parallel = {
            let _pin = ThreadsOverride::set(threads);
            afa::core::experiment::run_experiment(def, scale)
                .to_json()
                .to_string()
        };
        assert_eq!(
            sequential, parallel,
            "{} artifact diverged at {threads} threads",
            def.name,
        );
    });
}

/// The partition planner is a deterministic pure function of its
/// three inputs, and every plan it emits is a valid partition of the
/// nine I/O-path LPs: contiguous shard ids, every LP in exactly one
/// shard, never more shards than effective threads, and a reserved
/// hub lane on every multi-shard plan.
#[test]
fn planner_is_a_pure_function() {
    run_cases("planner_is_a_pure_function", 64, |g| {
        let mask = g.u64_in(0, 0xFF) as u16;
        let threads = g.usize_in(0, 16);
        let cores = g.usize_in(0, 32);
        let plan = plan_for(mask, threads, cores);
        // Purity: same inputs, same plan — no environment, no globals.
        assert_eq!(
            plan.assignment(),
            plan_for(mask, threads, cores).assignment(),
            "planner output varied across calls"
        );
        assert_eq!(plan.lp_count(), 9);
        let shards = plan.shard_count();
        assert!(shards >= 1);
        assert!(shards <= threads.min(cores.max(1)).max(1));
        // Partition validity: the per-shard member lists are disjoint
        // and cover every LP exactly once.
        let mut owner_count = vec![0usize; plan.lp_count()];
        for shard in 0..shards {
            for lp in plan.members(shard) {
                assert_eq!(plan.shard_of(lp), shard);
                owner_count[lp] += 1;
            }
        }
        assert!(owner_count.iter().all(|&n| n == 1), "LP owned != once");
        if shards > 1 {
            // The hub (LP 8) never shares a shard with a job-bearing
            // worker: its lane only ever absorbs idle workers.
            let hub_shard = plan.shard_of(8);
            for lp in plan.members(hub_shard) {
                assert!(
                    lp == 8 || mask >> lp & 1 == 0,
                    "job-bearing LP {lp} fused into the hub lane"
                );
            }
        }
    });
}

/// Every fusion level is invisible in the artifacts: for any
/// experiment, scale, forced plan and thread count, the run
/// serializes to exactly the bytes of the fully-fused single-wheel
/// plan. This is the differential form of the ci.sh plan matrix —
/// the matrix pins one (experiment, scale) point, this samples the
/// space.
#[test]
fn every_fusion_level_matches_single_plan_bytes() {
    let names = ["fig06", "fig07", "fig09", "fig12"];
    run_cases("every_fusion_level_matches_single_plan_bytes", 6, |g| {
        let def = afa::core::experiment::find(names[g.usize_in(0, names.len() - 1)])
            .expect("experiment registered");
        let scale = afa::core::experiment::ExperimentScale::new(
            SimDuration::millis(g.u64_in(10, 30)),
            g.usize_in(1, 6),
            g.u64_in(0, 10_000),
        );
        let baseline = {
            let _plan = PlanOverride::set(PlanSpec::Single);
            let _pin = ThreadsOverride::set(1);
            afa::core::experiment::run_experiment(def, scale)
                .to_json()
                .to_string()
        };
        let spec = match g.usize_in(0, 8) {
            8 => PlanSpec::Full,
            n => PlanSpec::Fused(n.max(2)),
        };
        let threads = g.usize_in(1, 4);
        let fused = {
            let _plan = PlanOverride::set(spec);
            let _pin = ThreadsOverride::set(threads);
            afa::core::experiment::run_experiment(def, scale)
                .to_json()
                .to_string()
        };
        assert_eq!(
            baseline, fused,
            "{} artifact diverged under {spec:?} at {threads} thread(s)",
            def.name,
        );
    });
}

/// Macro-event fusion is invisible in the artifacts: for any
/// experiment, scale, seed and partition plan, a run with the fusion
/// fast path forced on serializes to exactly the bytes of a run with
/// every chain forced down the per-stage path — including the
/// manifest's per-cause latency budget. On the single-shard plan the
/// fast path must actually engage (a gate that silently declines
/// everything would pass the byte-compare vacuously), and with fusion
/// forced off it must fuse nothing.
#[test]
fn fusion_on_and_off_produce_identical_artifacts() {
    // All QD1 interrupt- or poll-chain experiments at ≤ 6 SSDs: one
    // job per worker LP, so the single-plan runs satisfy the fusion
    // gates. (ablate-coalescing would decline by design — QD4 with
    // coalescing on — and is covered by the golden matrix instead.)
    let names = ["fig06", "fig07", "fig08", "fig09", "fig11", "ablate-poll"];
    run_cases("fusion_on_and_off_produce_identical_artifacts", 6, |g| {
        let def = afa::core::experiment::find(names[g.usize_in(0, names.len() - 1)])
            .expect("experiment registered");
        let scale = afa::core::experiment::ExperimentScale::new(
            SimDuration::millis(g.u64_in(10, 30)),
            g.usize_in(1, 6),
            g.u64_in(0, 10_000),
        );
        // Bias toward the single plan — the only one whose runs can
        // fuse — but keep the multi-shard plans in the sample space:
        // there the property degenerates to "forcing fusion on a plan
        // that can't fuse changes nothing".
        let spec = match g.usize_in(0, 5) {
            0 => PlanSpec::Full,
            1 => PlanSpec::Fused(g.usize_in(2, 8)),
            _ => PlanSpec::Single,
        };
        let run = |fuse: bool| {
            let _fusion = FusionOverride::set(fuse);
            let _plan = PlanOverride::set(spec);
            let _pin = ThreadsOverride::set(1);
            let before = afa::sim::metrics::fusion_totals();
            let json = afa::core::experiment::run_experiment(def, scale)
                .to_json()
                .to_string();
            (json, afa::sim::metrics::fusion_totals().since(&before))
        };
        let (fused_json, fused_tally) = run(true);
        let (unfused_json, unfused_tally) = run(false);
        assert_eq!(
            fused_json, unfused_json,
            "{} artifact diverged between fusion on and off under {spec:?}",
            def.name,
        );
        if spec == PlanSpec::Single {
            assert!(
                fused_tally.fused_chains > 0,
                "{}: single-plan run fused no chains — the fast path is dead",
                def.name,
            );
        }
        assert_eq!(
            unfused_tally.fused_chains, 0,
            "{}: FusionOverride(false) still fused chains",
            def.name,
        );
    });
}

/// Per-I/O ledgers are fusion-invariant, entry by entry: with the
/// ledger log enabled, runs with fusion forced on and off produce the
/// identical sequence of completed I/Os — same device, same issue
/// instant, same latency, and the same per-cause sums to the
/// nanosecond. Today the ledger-log gate routes both runs down the
/// per-stage path, so equality is structural; if that gate is ever
/// relaxed to let logged runs fuse, this becomes the test that the
/// eagerly-stamped fused ledger matches the per-stage one exactly.
#[test]
fn fusion_preserves_per_cause_ledger_sums() {
    run_cases("fusion_preserves_per_cause_ledger_sums", 8, |g| {
        let stage = [
            TuningStage::Default,
            TuningStage::Chrt,
            TuningStage::IrqAffinity,
            TuningStage::ExperimentalFirmware,
        ][g.usize_in(0, 3)];
        let seed = g.u64_in(0, 10_000);
        let ssds = g.usize_in(1, 6);
        let ledgers = |fuse: bool| {
            let _fusion = FusionOverride::set(fuse);
            let result = AfaSystem::run(
                &AfaConfig::paper(stage)
                    .with_ssds(ssds)
                    .with_runtime(SimDuration::millis(40))
                    .with_seed(seed)
                    .with_ledger_log(512),
            );
            let log = result.ledgers.expect("ledger log enabled");
            log.entries()
                .iter()
                .map(|io| {
                    (
                        io.device,
                        io.issued_at,
                        io.latency(),
                        io.ledger.rows().collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let fused = ledgers(true);
        let unfused = ledgers(false);
        assert!(!fused.is_empty(), "no completed I/Os logged");
        assert_eq!(
            fused, unfused,
            "per-cause ledger sums diverged between fusion on and off"
        );
    });
}

/// A world for probing the cross-shard merge contract: `sources`
/// shards fire bursts of cross events at one sink, with timestamps
/// drawn from a coarse grid so same-instant collisions across sources
/// are common. Each payload is the sender's running send counter —
/// the per-channel `seq` of the merge key.
struct Chatter {
    id: usize,
    /// Bursts this source still has to fire: (fire time, fan-out).
    bursts: Vec<(SimTime, usize)>,
    sent: u64,
    seen: Vec<(u64, usize, u64)>, // (time ns, src, payload) at the sink
}

impl ShardWorld for Chatter {
    type Local = ();
    type Cross = u64;

    fn handle_local(&mut self, _event: (), ctx: &mut ShardCtx<'_, (), u64>) {
        let Some((_, fanout)) = self.bursts.pop() else {
            return;
        };
        for i in 0..fanout {
            // Arrival grid: multiples of 100 ns past the lookahead,
            // shared across sources, so distinct (src, seq) pairs
            // collide on the timestamp — the tie the contract breaks.
            let at = ctx.now() + SimDuration::nanos(500) + SimDuration::nanos(100 * (i as u64 % 3));
            ctx.send(0, at, self.sent);
            self.sent += 1;
        }
        if let Some(&(t, _)) = self.bursts.last() {
            ctx.at(t, ());
        }
    }

    fn handle_cross(&mut self, src: usize, event: u64, ctx: &mut ShardCtx<'_, (), u64>) {
        debug_assert_eq!(self.id, 0, "only the sink receives");
        self.seen.push((ctx.now().as_nanos(), src, event));
    }
}

/// The merge ordering contract, clause 3: a receiver consumes cross
/// events in exactly `(time, source shard id, per-channel seq)` order,
/// for any burst pattern and any thread count — and the threaded
/// driver observes the identical sequence the sequential one does.
#[test]
fn cross_merge_respects_time_src_seq_order() {
    run_cases("cross_merge_respects_time_src_seq_order", 24, |g| {
        let sources = g.usize_in(2, 6);
        // Fire times on a coarse grid (sorted descending — Chatter
        // pops from the back) so sources frequently tie.
        let mut plans: Vec<Vec<(SimTime, usize)>> = Vec::new();
        for _ in 0..sources {
            let mut bursts: Vec<(SimTime, usize)> = (0..g.usize_in(1, 8))
                .map(|_| {
                    (
                        SimTime::ZERO + SimDuration::nanos(200 * g.u64_in(0, 12)),
                        g.usize_in(1, 3),
                    )
                })
                .collect();
            bursts.sort();
            bursts.reverse();
            plans.push(bursts);
        }
        let build = || {
            let mut shards = vec![(
                Chatter {
                    id: 0,
                    bursts: Vec::new(),
                    sent: 0,
                    seen: Vec::new(),
                },
                SimDuration::nanos(500),
            )];
            for (i, plan) in plans.iter().enumerate() {
                shards.push((
                    Chatter {
                        id: i + 1,
                        bursts: plan.clone(),
                        sent: 0,
                        seen: Vec::new(),
                    },
                    SimDuration::nanos(500),
                ));
            }
            let mut sim = ShardedSim::new(shards);
            for (i, plan) in plans.iter().enumerate() {
                if let Some(&(t, _)) = plan.last() {
                    sim.schedule(i + 1, t, ());
                }
            }
            sim
        };

        let mut seq = build();
        seq.run_sequential();
        let seq_seen = std::mem::take(&mut seq.into_worlds()[0].seen);

        // Clause 3: the consumed order IS the sorted merge-key order.
        let mut sorted = seq_seen.clone();
        sorted.sort();
        assert_eq!(seq_seen, sorted, "sink consumed out of merge-key order");
        let expected: u64 = plans
            .iter()
            .flatten()
            .map(|&(_, fanout)| fanout as u64)
            .sum();
        assert_eq!(seq_seen.len() as u64, expected, "messages lost");

        let mut par = build();
        par.run_threaded(g.usize_in(2, 7));
        let par_seen = std::mem::take(&mut par.into_worlds()[0].seen);
        assert_eq!(seq_seen, par_seen, "threaded driver diverged");
    });
}

/// The streaming quantile sketch honors its configured relative-error
/// bound against a rank-exact oracle, for any workload shape the
/// serving layer can produce: uniform bands, heavy tails, multi-modal
/// mixtures and same-value bursts, spanning the sketch's whole covered
/// range (~100 ns to ~100 s).
#[test]
fn sketch_tracks_exact_percentiles_within_bound() {
    use afa::stats::QuantileSketch;
    run_cases("sketch_tracks_exact_percentiles_within_bound", 24, |g| {
        let mut sketch = QuantileSketch::new();
        let mut samples: Vec<u64> = Vec::new();
        let n = g.usize_in(100, 5_000);
        // A random mixture of magnitude bands, so one case can hold
        // e.g. a microsecond body with a multi-second tail.
        let bands: Vec<(u64, u64)> = (0..g.usize_in(1, 5))
            .map(|_| {
                // Cap the band top near 50 s: past the sketch's
                // covered range (~330 s) estimates saturate by design.
                let lo = 10u64.pow(g.u32_in(2, 10));
                (lo, lo * g.u64_in(2, 51))
            })
            .collect();
        for _ in 0..n {
            let (lo, hi) = bands[g.usize_in(0, bands.len())];
            let v = g.u64_in(lo, hi);
            sketch.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        assert_eq!(sketch.count(), n as u64);
        for &p in &[50.0, 90.0, 99.0, 99.9, 100.0] {
            // Same rank rule the sketch uses, against the true sample.
            let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
            let exact = samples[rank - 1] as f64;
            let approx = sketch.value_at_percentile(p) as f64;
            let err = (approx - exact).abs() / exact;
            assert!(
                err <= sketch.relative_error() + 1e-9,
                "p{p}: sketch {approx} vs exact {exact} (err {err:.4}, bound {})",
                sketch.relative_error()
            );
        }
    });
}

/// Sketch merging is exactly stream concatenation: merge(a, b) answers
/// every query with the same numbers as one sketch fed both streams,
/// for any pair of workloads. This is the property that makes
/// cross-tenant rollups O(1) instead of O(samples).
#[test]
fn sketch_merge_equals_concatenated_stream() {
    use afa::stats::QuantileSketch;
    run_cases("sketch_merge_equals_concatenated_stream", 24, |g| {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut both = QuantileSketch::new();
        for sketch_half in [&mut a, &mut b] {
            let n = g.usize_in(0, 2_000);
            let lo = 10u64.pow(g.u32_in(2, 9));
            let hi = lo * g.u64_in(2, 1_000);
            for _ in 0..n {
                let v = g.u64_in(lo, hi);
                sketch_half.record(v);
                both.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.mean().to_bits(), both.mean().to_bits());
        for tenth in 0..=1_000u64 {
            let p = tenth as f64 / 10.0;
            assert_eq!(
                a.value_at_percentile(p),
                both.value_at_percentile(p),
                "merge diverged from concatenation at p{p}"
            );
        }
    });
}

/// Rendezvous placement is a pure function of `(volume, array set)` —
/// invariant under the order the alive set is presented in — and
/// killing one array moves the minimum possible data: every volume
/// keeps its surviving replicas, volumes that never placed on the dead
/// array keep their placement verbatim, and the affected fraction
/// concentrates near `r/n` (at most one array's worth of placements).
#[test]
fn rendezvous_placement_is_pure_and_loses_at_most_one_arrays_share() {
    use afa::fleet::place_among;
    run_cases(
        "rendezvous_placement_is_pure_and_loses_at_most_one_arrays_share",
        32,
        |g| {
            let n = g.usize_in(3, 8);
            let r = g.usize_in(1, 3.min(n));
            let volumes = g.u64_in(64, 512);
            let all: Vec<usize> = (0..n).collect();
            let mut shuffled = all.clone();
            // Fisher–Yates off the case generator: same set, new order.
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, g.usize_in(0, i + 1));
            }
            let dead = g.usize_in(0, n);
            let survivors: Vec<usize> = all.iter().copied().filter(|&a| a != dead).collect();
            let mut affected = 0u64;
            for volume in 0..volumes {
                let before = place_among(volume, &all, r);
                // Purity: same inputs — and any presentation order of
                // the same set — produce the identical placement.
                assert_eq!(before, place_among(volume, &all, r));
                assert_eq!(before, place_among(volume, &shuffled, r));
                assert_eq!(before.len(), r);
                let after = place_among(volume, &survivors, r);
                if before.contains(&dead) {
                    affected += 1;
                    // Minimal motion: every surviving replica is kept.
                    for member in before.iter().filter(|&&a| a != dead) {
                        assert!(
                            after.contains(member),
                            "volume {volume} dropped surviving replica {member}"
                        );
                    }
                } else {
                    assert_eq!(
                        before, after,
                        "volume {volume} moved without touching the dead array"
                    );
                }
            }
            // Expected affected share is r/n; allow generous sampling
            // slack but pin the order of magnitude ("at most one
            // array's worth, give or take the draw").
            let expected = volumes as f64 * r as f64 / n as f64;
            assert!(
                (affected as f64) < 2.0 * expected + 16.0,
                "{affected} affected volumes for an expectation of {expected:.0}"
            );
        },
    );
}

/// Exactly-once settlement under fault injection: for any seed and any
/// kill time, every request the fleet frontend admits settles exactly
/// once — served or shed, never both, never twice (a double settle
/// panics inside the request book), the book drains by the horizon,
/// and every per-request ledger still tiles the measured latency.
#[test]
fn fleet_failover_settles_exactly_once_for_any_kill_time() {
    use afa::core::experiment::fleet_failover_probe;
    run_cases(
        "fleet_failover_settles_exactly_once_for_any_kill_time",
        8,
        |g| {
            let seed = g.u64_in(0, 10_000);
            let kill_frac = g.u64_in(50, 950) as f64 / 1_000.0;
            let out = fleet_failover_probe(seed, kill_frac);
            assert!(out.admitted > 0, "probe admitted nothing");
            assert_eq!(
                out.admitted,
                out.settled + out.shed,
                "seed {seed}, kill at {kill_frac}: settled {} + shed {} \
                 != admitted {}",
                out.settled,
                out.shed,
                out.admitted
            );
            assert_eq!(
                out.in_flight_at_end, 0,
                "seed {seed}: requests still open after the drain horizon"
            );
            assert_eq!(
                out.ledger_mismatches, 0,
                "seed {seed}: a request's causes stopped tiling its latency"
            );
        },
    );
}

/// Tuning never makes the worst case worse than default for the same
/// seed (statistically certain at this scale).
#[test]
fn tuned_never_loses_to_default() {
    run_cases("tuned_never_loses_to_default", 8, |g| {
        let seed = g.u64_in(0, 1_000);
        let default = AfaSystem::run(
            &AfaConfig::paper(TuningStage::Default)
                .with_ssds(4)
                .with_runtime(SimDuration::millis(120))
                .with_seed(seed),
        );
        let tuned = AfaSystem::run(
            &AfaConfig::paper(TuningStage::ExperimentalFirmware)
                .with_ssds(4)
                .with_runtime(SimDuration::millis(120))
                .with_seed(seed),
        );
        let max = |r: &afa::core::RunResult| {
            r.reports
                .iter()
                .map(|rep| rep.histogram().max())
                .max()
                .unwrap()
        };
        assert!(max(&tuned) <= max(&default));
    });
}
