//! Cross-crate property tests over the whole system.

use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::SimDuration;
use afa::stats::NinesPoint;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed and small device count, the system completes I/O
    /// on every device, latencies are at least the physical floor
    /// (device ~25 µs + fabric), and percentile profiles are monotone.
    #[test]
    fn runs_are_sane_for_any_seed(seed in 0u64..10_000, ssds in 1usize..6) {
        let result = AfaSystem::run(
            &AfaConfig::paper(TuningStage::IrqAffinity)
                .with_ssds(ssds)
                .with_runtime(SimDuration::millis(40))
                .with_seed(seed),
        );
        prop_assert_eq!(result.reports.len(), ssds);
        for report in &result.reports {
            prop_assert!(report.completed() > 300, "{} I/Os", report.completed());
            let profile = report.profile();
            prop_assert!(profile.get_micros(NinesPoint::Average) > 25.0);
            let pts = [
                NinesPoint::Nines2,
                NinesPoint::Nines3,
                NinesPoint::Nines4,
                NinesPoint::Nines5,
                NinesPoint::Nines6,
                NinesPoint::Max,
            ];
            for w in pts.windows(2) {
                prop_assert!(profile.get(w[0]) <= profile.get(w[1]));
            }
        }
    }

    /// Tuning never makes the worst case worse than default for the
    /// same seed (statistically certain at this scale).
    #[test]
    fn tuned_never_loses_to_default(seed in 0u64..1_000) {
        let default = AfaSystem::run(
            &AfaConfig::paper(TuningStage::Default)
                .with_ssds(4)
                .with_runtime(SimDuration::millis(120))
                .with_seed(seed),
        );
        let tuned = AfaSystem::run(
            &AfaConfig::paper(TuningStage::ExperimentalFirmware)
                .with_ssds(4)
                .with_runtime(SimDuration::millis(120))
                .with_seed(seed),
        );
        let max = |r: &afa::core::RunResult| {
            r.reports
                .iter()
                .map(|rep| rep.histogram().max())
                .max()
                .unwrap()
        };
        prop_assert!(max(&tuned) <= max(&default));
    }
}
