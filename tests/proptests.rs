//! Cross-crate property tests over the whole system, on the
//! first-party [`afa_sim::check`] harness.
//!
//! These runs simulate whole arrays and are comparatively heavy, so
//! the suite is gated behind the `proptest` cargo feature:
//!
//! ```text
//! cargo test --features proptest --test proptests
//! ```

use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::check::run_cases;
use afa::sim::SimDuration;
use afa::stats::NinesPoint;

/// For any seed and small device count, the system completes I/O on
/// every device, latencies are at least the physical floor (device
/// ~25 µs + fabric), and percentile profiles are monotone.
#[test]
fn runs_are_sane_for_any_seed() {
    run_cases("runs_are_sane_for_any_seed", 8, |g| {
        let seed = g.u64_in(0, 10_000);
        let ssds = g.usize_in(1, 6);
        let result = AfaSystem::run(
            &AfaConfig::paper(TuningStage::IrqAffinity)
                .with_ssds(ssds)
                .with_runtime(SimDuration::millis(40))
                .with_seed(seed),
        );
        assert_eq!(result.reports.len(), ssds);
        for report in &result.reports {
            assert!(report.completed() > 300, "{} I/Os", report.completed());
            let profile = report.profile();
            assert!(profile.get_micros(NinesPoint::Average) > 25.0);
            let pts = [
                NinesPoint::Nines2,
                NinesPoint::Nines3,
                NinesPoint::Nines4,
                NinesPoint::Nines5,
                NinesPoint::Nines6,
                NinesPoint::Max,
            ];
            for w in pts.windows(2) {
                assert!(profile.get(w[0]) <= profile.get(w[1]));
            }
        }
    });
}

/// Tuning never makes the worst case worse than default for the same
/// seed (statistically certain at this scale).
#[test]
fn tuned_never_loses_to_default() {
    run_cases("tuned_never_loses_to_default", 8, |g| {
        let seed = g.u64_in(0, 1_000);
        let default = AfaSystem::run(
            &AfaConfig::paper(TuningStage::Default)
                .with_ssds(4)
                .with_runtime(SimDuration::millis(120))
                .with_seed(seed),
        );
        let tuned = AfaSystem::run(
            &AfaConfig::paper(TuningStage::ExperimentalFirmware)
                .with_ssds(4)
                .with_runtime(SimDuration::millis(120))
                .with_seed(seed),
        );
        let max = |r: &afa::core::RunResult| {
            r.reports
                .iter()
                .map(|rep| rep.histogram().max())
                .max()
                .unwrap()
        };
        assert!(max(&tuned) <= max(&default));
    });
}
