//! Shape assertions: the paper's qualitative results must hold at
//! test scale. (The full quantitative comparison lives in the bench
//! harness and `EXPERIMENTS.md`; these tests pin the *ordering* and
//! rough magnitudes so a regression cannot slip in silently.)

use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::SimDuration;
use afa::ssd::{FirmwareProfile, SmartPolicy};
use afa::stats::NinesPoint;

fn worst_max_us(result: &afa::core::RunResult) -> f64 {
    result
        .reports
        .iter()
        .map(|r| r.profile().get_micros(NinesPoint::Max))
        .fold(0.0, f64::max)
}

fn mean_avg_us(result: &afa::core::RunResult) -> f64 {
    let sum: f64 = result
        .reports
        .iter()
        .map(|r| r.profile().get_micros(NinesPoint::Average))
        .sum();
    sum / result.reports.len() as f64
}

fn run(stage: TuningStage, ms: u64) -> afa::core::RunResult {
    AfaSystem::run(
        &AfaConfig::paper(stage)
            .with_ssds(12)
            .with_runtime(SimDuration::millis(ms))
            .with_seed(42),
    )
}

/// A fast-housekeeping firmware so short test runs reliably cross
/// SMART windows (production firmware's 25 s period would need the
/// full 120 s runs).
fn fast_smart() -> FirmwareProfile {
    FirmwareProfile::with_smart_policy(
        "TEST-FAST-SMART",
        SmartPolicy::Periodic {
            mean_period: SimDuration::millis(60),
            period_jitter: SimDuration::millis(10),
            min_duration: SimDuration::micros(580),
            max_duration: SimDuration::micros(620),
        },
    )
}

#[test]
fn default_tail_is_milliseconds_and_tuning_collapses_it() {
    let default = run(TuningStage::Default, 400);
    let chrt = run(TuningStage::Chrt, 400);
    let tuned = run(TuningStage::ExperimentalFirmware, 400);

    let max_default = worst_max_us(&default);
    let max_chrt = worst_max_us(&chrt);
    let max_tuned = worst_max_us(&tuned);

    // Paper: ~5000 µs → ~600 µs → ~90 µs.
    assert!(max_default > 800.0, "default max only {max_default} us");
    assert!(
        max_chrt < max_default,
        "chrt ({max_chrt}) must beat default ({max_default})"
    );
    assert!(max_tuned < 150.0, "fully tuned max {max_tuned} us");
    assert!(
        max_default / max_tuned > 5.0,
        "end-to-end improvement too small: {max_default} / {max_tuned}"
    );
}

fn run_wide(stage: TuningStage, ms: u64) -> afa::core::RunResult {
    // The paper's interference effects need the paper's geometry: most
    // CPUs hosting fio threads, so daemons have nowhere clean to land.
    AfaSystem::run(
        &AfaConfig::paper(stage)
            .with_ssds(48)
            .with_runtime(SimDuration::millis(ms))
            .with_seed(42),
    )
}

#[test]
fn chrt_gives_the_biggest_average_win() {
    // Fig. 12: "adjustment of the FIO process priority yields the most
    // impact on the average latency."
    let default = mean_avg_us(&run_wide(TuningStage::Default, 250));
    let chrt = mean_avg_us(&run_wide(TuningStage::Chrt, 250));
    let isol = mean_avg_us(&run_wide(TuningStage::Isolcpus, 250));
    let irq = mean_avg_us(&run_wide(TuningStage::IrqAffinity, 250));

    let steps = [default - chrt, chrt - isol, isol - irq];
    assert!(
        steps[0] >= steps[1] && steps[0] >= steps[2],
        "chrt step must dominate: {steps:?} (default {default}, chrt {chrt})"
    );
    assert!(irq < default, "tuning must reduce the average");
}

#[test]
fn smart_housekeeping_sets_the_tuned_tail() {
    // With production-style housekeeping (sped up for test scale) the
    // tuned kernel's max sits at the window length (~600 µs); the
    // experimental firmware removes it (Fig. 9 vs Fig. 11).
    let with_smart = AfaSystem::run(
        &AfaConfig::paper(TuningStage::IrqAffinity)
            .with_ssds(8)
            .with_runtime(SimDuration::millis(250))
            .with_seed(3)
            .with_firmware(fast_smart()),
    );
    let without = AfaSystem::run(
        &AfaConfig::paper(TuningStage::ExperimentalFirmware)
            .with_ssds(8)
            .with_runtime(SimDuration::millis(250))
            .with_seed(3),
    );
    let max_smart = worst_max_us(&with_smart);
    let max_clean = worst_max_us(&without);
    assert!(
        (450.0..900.0).contains(&max_smart),
        "SMART-dominated max should be ~600 us, got {max_smart}"
    );
    assert!(max_clean < 150.0, "SMART-free max {max_clean} us");
}

#[test]
fn smart_spikes_are_periodic_in_the_latency_log() {
    // Fig. 10: periodic spikes in the per-sample scatter.
    let result = AfaSystem::run(
        &AfaConfig::paper(TuningStage::IrqAffinity)
            .with_ssds(4)
            .with_runtime(SimDuration::millis(400))
            .with_seed(9)
            .with_firmware(fast_smart())
            .with_logging(true),
    );
    let mut total_spikes = 0;
    for report in &result.reports {
        let log = report.latency_log().expect("logging on");
        let spikes = log.spike_indices(200_000);
        total_spikes += spikes.len();
        if spikes.len() >= 2 {
            let gap = afa::stats::series::median_spike_gap(&spikes).unwrap();
            // ~60 ms period at ~30 µs per sample ≈ 1500–2500 samples.
            assert!(
                (800..4_000).contains(&gap),
                "spike gap {gap} samples not periodic"
            );
        }
    }
    assert!(
        total_spikes >= 4,
        "expected periodic spikes, saw {total_spikes}"
    );
}

#[test]
fn per_device_distributions_converge_with_irq_pinning() {
    // Fig. 12's std chart: pinning collapses the cross-device spread
    // of the upper percentiles.
    let balanced = run(TuningStage::Isolcpus, 300);
    let pinned = run(TuningStage::IrqAffinity, 300);
    let spread = |r: &afa::core::RunResult, p: NinesPoint| {
        let values: Vec<f64> = r
            .reports
            .iter()
            .map(|rep| rep.profile().get_micros(p))
            .collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0, f64::max);
        hi - lo
    };
    let spread_balanced = spread(&balanced, NinesPoint::Nines3);
    let spread_pinned = spread(&pinned, NinesPoint::Nines3);
    assert!(
        spread_pinned <= spread_balanced + 0.5,
        "pinning must not widen the spread: {spread_balanced} -> {spread_pinned}"
    );
}

#[test]
fn aggregate_throughput_stays_under_the_uplink() {
    // §IV-G: 64 QD1 threads issue ≈8.3 GB/s, below the 16 GB/s uplink.
    let result = AfaSystem::run(
        &AfaConfig::paper(TuningStage::IrqAffinity)
            .with_ssds(32)
            .with_runtime(SimDuration::millis(200))
            .with_seed(4),
    );
    let gbps = result.aggregate_gbps(SimDuration::millis(200));
    // Half the array → roughly half of 8.3 GB/s.
    assert!((2.0..8.0).contains(&gbps), "aggregate {gbps} GB/s");
}
