//! Golden determinism tests.
//!
//! A simulator's value depends on exact reproducibility: the same
//! seed must produce the same bits on every machine and every run.
//! These tests pin concrete outputs for fixed seeds. If a model change
//! intentionally alters behaviour, update the golden values *in the
//! same commit* and say so — silent drift is the bug being guarded.

use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::{SimDuration, SimRng};

#[test]
fn rng_streams_are_pinned() {
    // The xoshiro256** / splitmix64 implementation must never drift.
    let mut rng = SimRng::from_seed(42);
    let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    let mut rng2 = SimRng::from_seed(42);
    let again: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
    assert_eq!(first, again);
    // Distinct streams from one master seed stay distinct and stable.
    let a = SimRng::from_seed_and_stream(1, 0).next_u64();
    let b = SimRng::from_seed_and_stream(1, 1).next_u64();
    assert_ne!(a, b);
}

#[test]
fn whole_system_run_is_bit_stable() {
    let run = || {
        AfaSystem::run(
            &AfaConfig::paper(TuningStage::Default)
                .with_ssds(4)
                .with_runtime(SimDuration::millis(100))
                .with_seed(20_260_707),
        )
    };
    let a = run();
    let b = run();
    let fingerprint = |r: &afa::core::RunResult| {
        r.reports
            .iter()
            .map(|rep| {
                (
                    rep.completed(),
                    rep.histogram().max(),
                    rep.histogram().mean().to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(fingerprint(&a), fingerprint(&b), "same-process instability");
    // Cross-run sanity: counts sit where this model version puts them.
    // (Exact counts are asserted between the two in-process runs above;
    // here we bound them so a silently changed model still trips.)
    for rep in &a.reports {
        let count = rep.completed();
        assert!(
            (2_000..3_600).contains(&count),
            "completion count drifted: {count}"
        );
        let max_us = rep.histogram().max() as f64 / 1e3;
        assert!(max_us < 30_000.0, "max exploded: {max_us}");
    }
}

#[test]
fn seeds_fan_out_independent_worlds() {
    let max_for = |seed: u64| {
        let r = AfaSystem::run(
            &AfaConfig::paper(TuningStage::Default)
                .with_ssds(2)
                .with_runtime(SimDuration::millis(60))
                .with_seed(seed),
        );
        r.reports
            .iter()
            .map(|rep| rep.histogram().max())
            .max()
            .unwrap()
    };
    let values: Vec<u64> = (0..6).map(max_for).collect();
    let mut unique = values.clone();
    unique.sort_unstable();
    unique.dedup();
    assert!(
        unique.len() >= 5,
        "seeds should explore distinct tails: {values:?}"
    );
}

#[test]
fn experiment_json_artifact_is_bit_stable() {
    // `afactl exp <name> --json` promises byte-identical output for
    // the same (experiment, scale): wall-clock is serialized as null
    // and everything else is a pure function of the seed.
    let def = afa::core::experiment::find("fig12").expect("fig12 registered");
    let scale = afa::core::experiment::ExperimentScale::new(SimDuration::millis(50), 4, 42);
    let artifact = || {
        afa::core::experiment::run_experiment(def, scale)
            .to_json()
            .to_string()
    };
    let a = artifact();
    assert_eq!(a, artifact(), "same-seed JSON artifacts differ");
    assert!(a.contains("\"wall_ms\":null"), "wall-clock leaked: {a}");
}
