//! Cross-crate invariants of the whole-array simulation.

use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::host::CpuId;
use afa::sim::SimDuration;
use afa::workload::IoEngine;

fn quick(stage: TuningStage, ssds: usize, ms: u64, seed: u64) -> afa::core::RunResult {
    AfaSystem::run(
        &AfaConfig::paper(stage)
            .with_ssds(ssds)
            .with_runtime(SimDuration::millis(ms))
            .with_seed(seed),
    )
}

#[test]
fn whole_stack_is_deterministic() {
    let a = quick(TuningStage::Default, 6, 80, 99);
    let b = quick(TuningStage::Default, 6, 80, 99);
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.completed(), rb.completed());
        assert_eq!(ra.histogram().max(), rb.histogram().max());
        assert_eq!(ra.histogram().mean(), rb.histogram().mean());
    }
    assert_eq!(a.host.stats(), b.host.stats());
    assert_eq!(a.fabric_stats, b.fabric_stats);
}

#[test]
fn different_seeds_differ() {
    let a = quick(TuningStage::Default, 4, 80, 1);
    let b = quick(TuningStage::Default, 4, 80, 2);
    let max_a: Vec<u64> = a.reports.iter().map(|r| r.histogram().max()).collect();
    let max_b: Vec<u64> = b.reports.iter().map(|r| r.histogram().max()).collect();
    assert_ne!(max_a, max_b);
}

#[test]
fn interrupts_match_completions_under_libaio() {
    let r = quick(TuningStage::IrqAffinity, 6, 80, 5);
    let completed: u64 = r.reports.iter().map(|rep| rep.completed()).sum();
    assert_eq!(r.host.stats().irqs, completed);
    assert_eq!(r.fabric_stats.interrupts, completed);
    assert_eq!(r.fabric_stats.commands, completed);
}

#[test]
fn fabric_conserves_bytes() {
    let r = quick(TuningStage::Chrt, 6, 80, 6);
    assert_eq!(r.fabric_stats.device_bytes, r.fabric_stats.uplink_bytes);
    let completed: u64 = r.reports.iter().map(|rep| rep.completed()).sum();
    // Every completion carries 4 KiB + CQE + MSI.
    assert!(r.fabric_stats.uplink_bytes >= completed * 4096);
    assert!(r.fabric_stats.uplink_bytes <= completed * (4096 + 64));
}

#[test]
fn isolation_keeps_background_off_io_cpus() {
    let r = quick(TuningStage::Isolcpus, 16, 150, 7);
    let stats = r.host.stats();
    assert!(stats.bg_bursts > 0, "background workload never arrived");
    for cpu in (4..20).chain(24..40) {
        assert_eq!(
            stats.bg_per_cpu[cpu], 0,
            "background burst on isolated cpu({cpu})"
        );
    }
}

#[test]
fn default_config_lets_background_onto_io_cpus() {
    let r = quick(TuningStage::Default, 16, 150, 8);
    let stats = r.host.stats();
    let on_io: u64 = (4..20).chain(24..40).map(|c| stats.bg_per_cpu[c]).sum();
    assert!(on_io > 0, "stock placement should pollute fio CPUs");
}

#[test]
fn pinned_vectors_are_never_remote() {
    let r = quick(TuningStage::IrqAffinity, 8, 80, 9);
    assert_eq!(r.host.stats().remote_irqs, 0);
}

#[test]
fn balanced_vectors_are_mostly_remote() {
    let r = quick(TuningStage::Isolcpus, 8, 80, 10);
    let stats = r.host.stats();
    assert!(
        stats.remote_irqs as f64 > stats.irqs as f64 * 0.5,
        "{}/{} remote",
        stats.remote_irqs,
        stats.irqs
    );
}

#[test]
fn polling_uses_no_interrupts_and_cuts_latency() {
    let libaio = quick(TuningStage::ExperimentalFirmware, 2, 80, 11);
    let polling = AfaSystem::run(
        &AfaConfig::paper(TuningStage::ExperimentalFirmware)
            .with_ssds(2)
            .with_runtime(SimDuration::millis(80))
            .with_seed(11)
            .with_engine(IoEngine::Polling),
    );
    assert_eq!(polling.host.stats().irqs, 0);
    let mean_libaio = libaio.reports[0].histogram().mean();
    let mean_polling = polling.reports[0].histogram().mean();
    assert!(
        mean_polling < mean_libaio,
        "polling {mean_polling} !< libaio {mean_libaio}"
    );
}

#[test]
fn geometry_pins_jobs_to_paper_cpus() {
    let config = AfaConfig::paper(TuningStage::Default).with_ssds(64);
    assert_eq!(config.geometry.cpu_of_ssd(0), CpuId(4));
    assert_eq!(config.geometry.cpu_of_ssd(32), CpuId(4));
    assert_eq!(config.geometry.cpu_of_ssd(63), CpuId(39));
}

#[test]
fn every_job_respects_its_deadline_and_depth() {
    let r = quick(TuningStage::Chrt, 4, 60, 12);
    for report in &r.reports {
        // 60 ms at ~33 µs per I/O leaves no room for more than ~2000.
        assert!(report.completed() < 2_200);
        assert!(report.completed() > 1_000);
    }
    // Simulation drains completely: elapsed stays near the deadline.
    assert!(r.elapsed.as_secs_f64() < 0.2);
}
