//! Regression tests for the bounded experiment worker pool.
//!
//! Experiment sweeps used to spawn one OS thread per configuration;
//! a 64-config sweep on a small machine would oversubscribe it badly.
//! These tests pin the pool's contract: results come back in input
//! order, bit-identical to sequential execution, and the pool never
//! runs more configurations concurrently than
//! `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};

use afa::core::experiment::pool;
use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::SimDuration;
use afa::stats::NinesPoint;

fn sweep_configs() -> Vec<AfaConfig> {
    let stages = TuningStage::ALL;
    (0..64usize)
        .map(|i| {
            AfaConfig::paper(stages[i % stages.len()])
                .with_ssds(1 + i % 4)
                .with_runtime(SimDuration::millis(10))
                .with_seed(1_000 + i as u64)
        })
        .collect()
}

/// Fingerprint of one run: per-device (samples, max µs) pairs. The
/// simulator is deterministic, so equal fingerprints mean equal runs.
fn fingerprint(result: &afa::core::RunResult) -> Vec<(u64, f64)> {
    result
        .reports
        .iter()
        .map(|r| {
            let p = r.profile();
            (p.samples(), p.get_micros(NinesPoint::Max))
        })
        .collect()
}

#[test]
fn sixty_four_config_sweep_is_ordered_and_bounded() {
    let configs = sweep_configs();
    let live = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let results = pool::map_bounded(configs.clone(), |config| {
        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
        peak.fetch_max(now, Ordering::SeqCst);
        let result = AfaSystem::run(&config);
        live.fetch_sub(1, Ordering::SeqCst);
        result
    });
    assert_eq!(results.len(), configs.len());

    let cap = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let observed = peak.load(Ordering::SeqCst);
    assert!(
        observed <= cap,
        "pool ran {observed} configs concurrently, cap is {cap}"
    );

    // Input order: each slot must hold the run of *its* config, not
    // whichever finished first. Spot-check against sequential runs.
    for &i in &[0usize, 13, 37, 63] {
        let expected = AfaSystem::run(&configs[i]);
        assert_eq!(
            fingerprint(&expected),
            fingerprint(&results[i]),
            "slot {i} does not match a sequential run of config {i}"
        );
    }
}
