//! End-to-end smoke test of the blktrace-style I/O tracer.

use afa::core::blktrace::IoStage;
use afa::core::{AfaConfig, AfaSystem, TuningStage};
use afa::sim::{SimDuration, SimTime};

#[test]
fn traces_cover_the_full_path_in_order() {
    let result = AfaSystem::run(
        &AfaConfig::paper(TuningStage::IrqAffinity)
            .with_ssds(4)
            .with_runtime(SimDuration::millis(30))
            .with_seed(5)
            .with_io_tracing(100),
    );
    let traces = result.traces.expect("tracing enabled");
    assert_eq!(traces.traces().len(), 100);
    for trace in traces.traces() {
        // Q ≤ D ≤ C ≤ I ≤ R, all reached under libaio.
        for w in trace.stamps.windows(2) {
            assert!(w[0] <= w[1], "stages out of order: {trace:?}");
        }
        assert!(trace.stamps[4] > SimTime::ZERO, "reap missing");
        let total_us = trace.total().as_micros_f64();
        assert!((25.0..5_000.0).contains(&total_us), "total {total_us}");
    }
    let text = traces.to_text();
    assert!(text.contains(" Q "));
    assert!(text.contains(" R "));
}

#[test]
fn polling_traces_skip_the_irq_stage() {
    let result = AfaSystem::run(
        &AfaConfig::paper(TuningStage::ExperimentalFirmware)
            .with_ssds(1)
            .with_runtime(SimDuration::millis(10))
            .with_seed(6)
            .with_engine(afa::workload::IoEngine::Polling)
            .with_io_tracing(20),
    );
    let traces = result.traces.expect("tracing enabled");
    assert!(!traces.traces().is_empty());
    for trace in traces.traces() {
        assert_eq!(trace.stamps[3], SimTime::ZERO, "polling must not IRQ");
        assert!(trace.stamps[4] > SimTime::ZERO);
    }
}

#[test]
fn slowest_trace_explains_a_tail_sample() {
    let result = AfaSystem::run(
        &AfaConfig::paper(TuningStage::Default)
            .with_ssds(8)
            .with_runtime(SimDuration::millis(100))
            .with_seed(7)
            .with_io_tracing(50_000),
    );
    let traces = result.traces.expect("tracing enabled");
    let slowest = traces.slowest().expect("non-empty");
    // The tracer must let us decompose the slowest I/O: the dominant
    // gap sits between device-complete and reap (host-side) or inside
    // the device, never in the untraced void.
    let d = slowest.stamps;
    let device_time = d[2].saturating_since(d[1]);
    let host_time = d[4].saturating_since(d[2]);
    let total = slowest.total();
    assert!(
        device_time + host_time <= total,
        "stage gaps exceed the total"
    );
    let _ = IoStage::Queue; // exercise the re-export
}
